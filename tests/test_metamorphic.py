"""Metamorphic and property-based laws of the simulator.

Each property asserts a *relation between runs* (or an invariant of a
single run) over randomized-but-valid machines drawn from
:mod:`repro.testing.strategies` — not a point check against a golden
number.  The laws:

1.  spec determinism — identical trees produce identical fingerprints
    and parameter bundles;
2.  run determinism — the same (machine, workload, config) always
    produces identical results;
3.  a larger L2 never increases the L2 miss count (single program);
4.  a faster bus never increases runtime;
5.  slower memory never decreases runtime;
6.  a faster clock never increases runtime;
7.  the invariant auditor is clean on every random machine;
8.  instruction conservation holds on every random machine;
9.  structural counter closures hold on every random machine;
10. the scalar and vectorized cache replay paths agree bit-for-bit;
11. the scalar and vectorized TLB replay paths agree bit-for-bit;
12. a workload with no parallel phases is invariant to the team size;
13. a larger last-level cache never increases the last-level miss
    count, whatever the hierarchy depth (2-4 levels);
14. declaring NUMA tiers (remote latency >= local, remote bandwidth
    <= local) never speeds a cross-socket run up;
15. a larger working set (triad elements x2/x4/x8 at fixed repetitions)
    never produces fewer last-level cache misses;
16. a more memory-bound workload (higher mem_ops_per_instr, all else
    equal) never runs faster on a fixed machine.

Profiles: randomized under the ``dev`` Hypothesis profile, fixed-seed
deterministic under ``ci`` (see tests/conftest.py and docs/TESTING.md).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import verify
from repro.counters.events import Event
from repro.machine.configurations import get_config
from repro.machine.params import CacheParams, TLBParams
from repro.machine.spec import MachineSpec
from repro.mem.cache import SetAssocCache
from repro.mem.tlb import TLB
from repro.npb.suite import build_workload
from repro.sim.engine import Engine
from repro.testing.strategies import (
    machine_trees,
    nlevel_machine_trees,
    numa_topology_tables,
)

WORKLOAD = build_workload("CG", "B")
CONFIG = get_config("ht_off_2_1")


def _spec(tree):
    return MachineSpec.from_dict({
        "schema": 1,
        "name": "metamorphic",
        "description": "metamorphic test machine",
        "machine": tree,
    })


def _run(tree, workload=WORKLOAD, config=CONFIG):
    return Engine(config, params=_spec(tree).to_params()).run_single(workload)


def _scaled_bus(tree, factor):
    out = dict(tree)
    out["bus"] = {k: v * factor for k, v in tree["bus"].items()}
    return out


class TestSpecLaws:
    @given(machine_trees())
    @settings(max_examples=20)
    def test_identical_trees_identical_specs(self, tree):
        a, b = _spec(tree), _spec(tree)
        assert a.fingerprint == b.fingerprint
        assert a.to_params() == b.to_params()

    @given(machine_trees(), st.floats(1.25, 4.0))
    @settings(max_examples=20)
    def test_distinct_machines_distinct_fingerprints(self, tree, factor):
        assert _spec(tree).fingerprint != _spec(
            _scaled_bus(tree, factor)
        ).fingerprint


class TestMetamorphicRelations:
    @given(machine_trees())
    @settings(max_examples=5)
    def test_run_deterministic(self, tree):
        a, b = _run(tree), _run(tree)
        assert a.runtime_seconds == b.runtime_seconds
        ta, tb = a.collector.total(), b.collector.total()
        for event in Event:
            assert ta[event] == tb[event], event

    @given(machine_trees())
    @settings(max_examples=5)
    def test_larger_l2_never_more_misses(self, tree):
        bigger = dict(tree)
        bigger["l2"] = dict(tree["l2"], size_bytes=tree["l2"]["size_bytes"] * 2)
        base = _run(tree).collector.total()[Event.L2_MISS]
        grown = _run(bigger).collector.total()[Event.L2_MISS]
        assert grown <= base * (1 + 1e-9)

    @given(machine_trees(), st.floats(1.25, 4.0))
    @settings(max_examples=5)
    def test_faster_bus_never_slower(self, tree, factor):
        base = _run(tree).runtime_seconds
        fast = _run(_scaled_bus(tree, factor)).runtime_seconds
        assert fast <= base * (1 + 1e-9)

    @given(machine_trees(), st.floats(1.25, 4.0))
    @settings(max_examples=5)
    def test_slower_memory_never_faster(self, tree, factor):
        slower = dict(tree, memory_latency_ns=tree["memory_latency_ns"] * factor)
        base = _run(tree).runtime_seconds
        slow = _run(slower).runtime_seconds
        assert slow >= base * (1 - 1e-9)

    @given(machine_trees(), st.floats(1.25, 2.0))
    @settings(max_examples=5)
    def test_faster_clock_never_slower(self, tree, factor):
        boosted = dict(tree)
        boosted["core"] = dict(
            tree["core"], clock_hz=tree["core"]["clock_hz"] * factor
        )
        base = _run(tree).runtime_seconds
        fast = _run(boosted).runtime_seconds
        assert fast <= base * (1 + 1e-9)

    @given(machine_trees(), st.sampled_from([2, 4]))
    @settings(max_examples=5)
    def test_serial_workload_invariant_to_team_size(self, tree, threads):
        # Serial phases run on the master thread only (n_work == 1), so
        # on a fixed configuration the requested team size must not
        # change the result at all.  (Across *configurations* the result
        # may differ: topology-dependent CPI terms are legitimate.)
        serial_only = dataclasses.replace(
            WORKLOAD,
            phases=tuple(
                dataclasses.replace(p, parallel=False)
                for p in WORKLOAD.phases
            ),
        )
        engine = Engine(
            get_config("ht_off_4_2"), params=_spec(tree).to_params()
        )
        solo = engine.run_single(serial_only, n_threads=1)
        team = engine.run_single(serial_only, n_threads=threads)
        assert team.runtime_seconds == solo.runtime_seconds


class TestWorkloadRelations:
    """Laws 15-16: relations over the *workload* axis, machines fixed
    per example (drawn from the same spec-schema strategies)."""

    @given(machine_trees(), st.sampled_from([2, 4, 8]))
    @settings(max_examples=5)
    def test_larger_working_set_never_fewer_llc_misses(self, tree, factor):
        from repro.npb.common import ProblemClass
        from repro.workload.families import rzbench

        small = rzbench.triad_build(
            ProblemClass.B, elements=2 ** 18, repetitions=8
        )
        large = rzbench.triad_build(
            ProblemClass.B, elements=2 ** 18 * factor, repetitions=8
        )
        base = _run(tree, workload=small).collector.total()[Event.L2_MISS]
        grown = _run(tree, workload=large).collector.total()[Event.L2_MISS]
        assert grown >= base * (1 - 1e-9)

    @given(machine_trees(), st.floats(0.1, 0.45), st.floats(1.2, 2.0))
    @settings(max_examples=5)
    def test_more_memory_bound_never_faster(self, tree, mem, boost):
        from repro.npb.common import ProblemClass
        from repro.workload.families import rzbench

        lighter = rzbench.triad_build(
            ProblemClass.B, elements=2 ** 20, repetitions=8,
            mem_ops_per_instr=mem,
        )
        heavier = rzbench.triad_build(
            ProblemClass.B, elements=2 ** 20, repetitions=8,
            mem_ops_per_instr=min(mem * boost, 0.9),
        )
        base = _run(tree, workload=lighter).runtime_seconds
        bound = _run(tree, workload=heavier).runtime_seconds
        assert bound >= base * (1 - 1e-9)


class TestHierarchyAndTopologyRelations:
    @given(nlevel_machine_trees())
    @settings(max_examples=5)
    def test_larger_llc_never_more_misses(self, tree):
        hier = tree["hierarchy"]
        bigger = dict(tree)
        bigger["hierarchy"] = [dict(lvl) for lvl in hier]
        bigger["hierarchy"][-1]["size_bytes"] *= 2
        event = {
            2: Event.L2_MISS, 3: Event.L3_MISS, 4: Event.L4_MISS,
        }[len(hier)]
        base = _run(tree).collector.total()[event]
        grown = _run(bigger).collector.total()[event]
        assert grown <= base * (1 + 1e-9)

    @given(machine_trees(), numa_topology_tables())
    @settings(max_examples=5)
    def test_remote_tiers_never_speed_up(self, tree, topo):
        # A cross-socket configuration, so one thread really does reach
        # memory homed on the other socket (single-socket runs see only
        # the unit diagonal and must be bit-identical instead).
        config = get_config("ht_off_2_2")
        tiered = dict(tree, topology=topo)
        base = _run(tree, config=config).runtime_seconds
        remote = _run(tiered, config=config).runtime_seconds
        assert remote >= base * (1 - 1e-9)

    @given(nlevel_machine_trees())
    @settings(max_examples=5)
    def test_auditor_clean_on_nlevel_machines(self, tree):
        before = verify.stats().snapshot()
        with verify.verification(True):
            _run(tree)
        delta = verify.stats().since(before)
        assert delta.runs == 1 and delta.violations == 0
        assert delta.checks > 0


class TestInvariantsOnRandomMachines:
    @given(machine_trees())
    @settings(max_examples=5)
    def test_auditor_clean(self, tree):
        before = verify.stats().snapshot()
        with verify.verification(True):
            _run(tree)  # the auditor raises on any violation
        delta = verify.stats().since(before)
        assert delta.runs == 1 and delta.violations == 0
        assert delta.checks > 0

    @given(machine_trees())
    @settings(max_examples=5)
    def test_instruction_conservation(self, tree):
        total = _run(tree).collector.total()
        assert total[Event.INSTR_RETIRED] == pytest.approx(
            WORKLOAD.total_instructions, rel=1e-6
        )

    @given(machine_trees())
    @settings(max_examples=5)
    def test_counter_closures(self, tree):
        cs = _run(tree).collector.total()
        assert cs[Event.L1D_MISS] <= cs[Event.L1D_ACCESS] + 1e-6
        assert cs[Event.L2_MISS] <= cs[Event.L2_ACCESS] + 1e-6
        assert cs[Event.L2_ACCESS] == pytest.approx(
            cs[Event.L1D_MISS], rel=1e-9
        )
        assert cs[Event.STALL_CYCLES] <= cs[Event.CYCLES] + 1e-6


class TestVectorizedScalarAgreement:
    @given(
        st.sampled_from([2, 4, 8]),
        st.integers(4, 7).map(lambda e: 2 ** e),
        st.integers(0, 2 ** 32),
        st.integers(200, 600),
    )
    @settings(max_examples=10)
    def test_cache_paths_agree(self, assoc, n_sets, seed, n):
        params = CacheParams(
            size_bytes=64 * assoc * n_sets,
            line_bytes=64,
            associativity=assoc,
            latency_cycles=4.0,
        )
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 1 << 22, size=n, dtype=np.int64)
        contexts = rng.integers(0, 4, size=n, dtype=np.int64)

        scalar = SetAssocCache(params)
        batch = SetAssocCache(params)
        flags_scalar = scalar.run_misses(addresses, contexts, vectorized=False)
        flags_batch = batch.run_misses(addresses, contexts, vectorized=True)
        assert np.array_equal(flags_scalar, flags_batch)
        assert scalar.stats.accesses == batch.stats.accesses
        assert scalar.stats.misses == batch.stats.misses
        # Way ordering within a set may differ between the two paths;
        # the resident *lines* per set must not.
        assert np.array_equal(
            np.sort(scalar._tags, axis=1), np.sort(batch._tags, axis=1)
        )

    @given(
        st.integers(4, 7).map(lambda e: 2 ** e),
        st.integers(0, 2 ** 32),
        st.integers(200, 600),
    )
    @settings(max_examples=10)
    def test_tlb_paths_agree(self, entries, seed, n):
        params = TLBParams(entries=entries, miss_penalty_cycles=30.0)
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 1 << 28, size=n, dtype=np.int64)

        scalar = TLB(params)
        batch = TLB(params)
        flags_scalar = scalar.run_misses(addresses, vectorized=False)
        flags_batch = batch.run_misses(addresses, vectorized=True)
        assert np.array_equal(flags_scalar, flags_batch)
