"""Structural tests for the multi-phase workload decompositions."""

import pytest

from repro.npb.suite import ALL_BENCHMARKS, build_workload

EXPECTED_PHASES = {
    "CG": ["makea", "spmv", "dot_products", "axpy_updates"],
    "MG": ["resid", "psinv", "transfer"],
    "SP": ["compute_rhs", "x_solve", "y_solve", "z_solve", "add"],
    "FT": ["evolve", "fft_x", "fft_y", "fft_z"],
    "LU": ["rhs", "blts_lower", "buts_upper"],
    "BT": ["bt_rhs", "bt_x_solve", "bt_y_solve", "bt_z_solve"],
    "EP": ["generate"],
    "IS": ["rank"],
}


class TestPhaseStructure:
    @pytest.mark.parametrize("bench", sorted(EXPECTED_PHASES))
    def test_phase_names(self, bench):
        w = build_workload(bench, "B")
        assert [p.name for p in w.phases] == EXPECTED_PHASES[bench]

    @pytest.mark.parametrize("bench", ["CG", "MG", "SP", "FT", "LU", "BT"])
    def test_parallel_phases_share_code_footprint(self, bench):
        """Stages alternate within each iteration, so every parallel
        phase must carry the whole per-iteration hot-code footprint
        (otherwise the trace-cache model would wrongly see each routine
        in isolation)."""
        w = build_workload(bench, "B")
        footprints = {
            p.code_footprint_uops for p in w.phases if p.parallel
        }
        assert len(footprints) == 1

    @pytest.mark.parametrize("bench", ["SP", "FT", "MG", "LU", "BT"])
    def test_parallel_phases_share_iteration_count(self, bench):
        w = build_workload(bench, "B")
        iters = {p.iterations for p in w.phases if p.parallel}
        assert len(iters) == 1

    def test_cg_spmv_dominates(self):
        w = build_workload("CG", "B")
        spmv = next(p for p in w.phases if p.name == "spmv")
        assert spmv.instructions > 0.7 * w.total_instructions

    def test_sp_shares_sum_to_whole(self):
        w = build_workload("SP", "B")
        from repro.npb.sp import total_flops
        from repro.npb.common import FLOP_TO_UOPS, ProblemClass

        expected = total_flops(ProblemClass.B) * FLOP_TO_UOPS
        assert w.total_instructions == pytest.approx(expected, rel=1e-6)

    def test_ft_z_pass_streams_hardest(self):
        """The z pass embeds the transpose: its mixture must put more
        weight on the full-array stream than the blocked x/y passes."""
        w = build_workload("FT", "B")
        def stream_weight(phase):
            return sum(
                wgt for wgt, p in phase.access_mix.components
                if p.footprint_bytes > 1e8
            )
        z = next(p for p in w.phases if p.name == "fft_z")
        x = next(p for p in w.phases if p.name == "fft_x")
        assert stream_weight(z) > stream_weight(x)

    def test_lu_sweeps_carry_the_sync(self):
        w = build_workload("LU", "B")
        rhs = next(p for p in w.phases if p.name == "rhs")
        lower = next(p for p in w.phases if p.name == "blts_lower")
        assert lower.barriers > 50 * rhs.barriers
        assert lower.imbalance > rhs.imbalance

    def test_halo_traffic_only_on_parallel_phases(self):
        for bench in ALL_BENCHMARKS:
            w = build_workload(bench, "B")
            for p in w.phases:
                if not p.parallel:
                    assert p.halo_bytes_per_iteration == 0.0
