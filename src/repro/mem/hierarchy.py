"""Analytic memory-hierarchy evaluation for one phase on one context.

Computes trace-cache, L1-D, L2, ITLB and DTLB rates from a phase's access
mixture and code characteristics, applying the HT capacity-sharing model
of :mod:`repro.trace.patterns`.

Rate conventions (matching how VTune/the paper report them):

* ``tc_miss_rate`` — trace-cache misses per trace-cache *deliver* event.
* ``l1_miss_rate`` — L1-D misses per L1-D access (memory reference).
* ``l2_miss_rate`` — L2 misses per L2 *access* (i.e. per L1 miss): the
  "local" miss rate, which is what the paper's Figure 2 plots.
* ``itlb_miss_rate`` — ITLB misses per ITLB lookup.
* ``dtlb_misses_per_instr`` — absolute DTLB load+store misses per uop
  (the paper reports totals normalized to the serial case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.machine.params import MachineParams
from repro.trace.patterns import (
    effective_capacity,
    loop_thrash_miss_rate,
    sharing_discount,
)
from repro.trace.phase import Phase

#: Average uops delivered per trace-cache line (NetBurst packs 6/line).
UOPS_PER_TRACE_LINE = 6.0
#: ITLB lookups per uop that bypass the trace cache entirely (page
#: crossings, interrupts).
_ITLB_BASE_LOOKUPS_PER_UOP = 1.0 / 512.0
#: Additional ITLB pressure per extra active context in the system: OS
#: timer ticks, migrations and kernel entries touch new code pages more
#: often as the machine gets busier (the paper observes ITLB misses rising
#: with architecture complexity).
_ITLB_OS_NOISE = 0.012


@dataclass(frozen=True)
class LevelRate:
    """One resolved cache level beyond the L2 in an N-level chain.

    ``miss_rate`` is the *local* rate (misses per access to this
    level); ``accesses_per_instr`` equals the previous level's misses
    per instruction, so the chain composes level-to-level exactly like
    the L1 -> L2 hand-off.
    """

    name: str
    accesses_per_instr: float
    miss_rate: float
    misses_per_instr: float
    latency_cycles: float


@dataclass(frozen=True)
class LevelRates:
    """Resolved per-context hierarchy rates for one phase.

    The trace cache, L1-D, L2 and both TLBs keep their dedicated fields
    (the paper's machine, read on every hot path); hierarchy levels
    beyond the L2 appear in ``extra_levels``, ordered outward, and the
    ``llc_misses_per_instr`` view is what reaches memory — identical to
    ``l2_misses_per_instr`` on two-level machines.
    """

    tc_accesses_per_instr: float
    tc_miss_rate: float
    l1_accesses_per_instr: float
    l1_miss_rate: float
    l2_accesses_per_instr: float
    l2_miss_rate: float
    l2_misses_per_instr: float
    itlb_accesses_per_instr: float
    itlb_miss_rate: float
    dtlb_accesses_per_instr: float
    dtlb_miss_rate: float
    dtlb_misses_per_instr: float
    extra_levels: Tuple[LevelRate, ...] = ()

    @property
    def tc_misses_per_instr(self) -> float:
        return self.tc_accesses_per_instr * self.tc_miss_rate

    @property
    def l1_misses_per_instr(self) -> float:
        return self.l1_accesses_per_instr * self.l1_miss_rate

    @property
    def itlb_misses_per_instr(self) -> float:
        return self.itlb_accesses_per_instr * self.itlb_miss_rate

    @property
    def llc_misses_per_instr(self) -> float:
        """Misses per uop that leave the deepest cache for memory."""
        if self.extra_levels:
            return self.extra_levels[-1].misses_per_instr
        return self.l2_misses_per_instr


class HierarchyModel:
    """Evaluates phase miss rates against one machine's hierarchy."""

    def __init__(self, params: MachineParams):
        self.params = params

    def evaluate(
        self,
        phase: Phase,
        n_threads: int,
        core_sharers: int,
        same_data: bool,
        same_code: bool,
        total_visible_contexts: int,
        co_phase: Optional[Phase] = None,
        l2_sharers: Optional[int] = None,
        l2_same_data: Optional[bool] = None,
        extra_sharing: Optional[Sequence[Tuple[int, bool]]] = None,
    ) -> LevelRates:
        """Resolve hierarchy rates for one context executing ``phase``.

        Args:
            phase: the phase this context executes.
            n_threads: OpenMP team size of the owning program (divides
                partitioned footprints).
            core_sharers: active hardware contexts on this context's core
                (1, or 2 with a busy HT sibling).
            same_data: the HT sibling (if any) belongs to the same program
                *instance* (team) — enables constructive data sharing.
            same_code: the sibling executes the same binary (true for a
                second copy of the same benchmark too) — enables
                constructive trace-cache/ITLB sharing.
            total_visible_contexts: logical CPUs the OS initialized (OS
                noise on the ITLB grows with machine complexity).
            co_phase: phase run by a different-program sibling, used to
                model destructive code-footprint interference.
            l2_sharers: contexts sharing the L2 when its scope differs
                from the core (chip-shared L2 on next-generation parts);
                defaults to ``core_sharers``.
            l2_same_data: whether all L2 sharers belong to one program
                instance; defaults to ``same_data``.
            extra_sharing: per extra hierarchy level, the ``(sharers,
                same_data)`` pair derived from the level's scope and the
                active placement; defaults to the L2's effective pair
                for each level (scopes only widen outward, so this is
                the conservative floor).
        """
        p = self.params
        mix = phase.access_mix

        # --- data caches ---------------------------------------------
        l1_sharers = 1 if p.l1_scope == "thread" else core_sharers
        l1_miss = mix.miss_rate(
            p.l1d.size_bytes,
            p.l1d.line_bytes,
            n_threads=n_threads,
            sharers=l1_sharers,
            same_program=same_data,
        )
        eff_l2_sharers = l2_sharers if l2_sharers is not None else core_sharers
        eff_l2_same = l2_same_data if l2_same_data is not None else same_data
        l2_global = mix.miss_rate(
            p.l2.size_bytes,
            p.l2.line_bytes,
            n_threads=n_threads,
            sharers=eff_l2_sharers,
            same_program=eff_l2_same,
        )
        # Inclusion + larger L2 lines keep the global L2 miss rate at or
        # below the L1 rate; the local rate is their ratio.
        l2_global = min(l2_global, l1_miss)
        l2_local = l2_global / l1_miss if l1_miss > 1e-12 else 0.0

        l1_acc_per_instr = phase.mem_ops_per_instr
        l2_acc_per_instr = l1_acc_per_instr * l1_miss
        l2_miss_per_instr = l1_acc_per_instr * l2_global

        # --- levels beyond the L2 (N-level chain) --------------------
        # Each outer level filters the previous level's miss stream:
        # its accesses/uop are the inner level's misses/uop, its global
        # rate is clamped by inclusion, and the local rate is the ratio
        # — the same composition rule as the L1 -> L2 hand-off.
        extra_rates = []
        prev_global = l2_global
        for i, lvl in enumerate(p.extra_levels):
            if extra_sharing is not None and i < len(extra_sharing):
                lvl_sharers, lvl_same = extra_sharing[i]
            else:
                lvl_sharers, lvl_same = eff_l2_sharers, eff_l2_same
            lvl_global = mix.miss_rate(
                lvl.cache.size_bytes,
                lvl.cache.line_bytes,
                n_threads=n_threads,
                sharers=lvl_sharers,
                same_program=lvl_same,
            )
            lvl_global = min(lvl_global, prev_global)
            lvl_local = (
                lvl_global / prev_global if prev_global > 1e-12 else 0.0
            )
            extra_rates.append(LevelRate(
                name=lvl.name,
                accesses_per_instr=l1_acc_per_instr * prev_global,
                miss_rate=lvl_local,
                misses_per_instr=l1_acc_per_instr * lvl_global,
                latency_cycles=lvl.cache.latency_cycles,
            ))
            prev_global = lvl_global

        # --- trace cache ----------------------------------------------
        code_fp = phase.code_footprint_uops
        if same_code and core_sharers > 1:
            # Siblings execute the same loops: the footprint is fully
            # shared and one sibling's fill serves the other.
            tc_capacity = p.trace_cache.size_bytes
            tc_discount = sharing_discount(core_sharers, 1.0)
        elif core_sharers > 1:
            co_fp = co_phase.code_footprint_uops if co_phase is not None else code_fp
            share = code_fp / (code_fp + co_fp) if (code_fp + co_fp) else 0.5
            tc_capacity = p.trace_cache.size_bytes * share
            tc_discount = 1.0
        else:
            tc_capacity = p.trace_cache.size_bytes
            tc_discount = 1.0
        tc_miss = loop_thrash_miss_rate(code_fp, tc_capacity, width=0.35) * tc_discount
        tc_acc_per_instr = 1.0 / UOPS_PER_TRACE_LINE

        # --- ITLB -------------------------------------------------------
        # Front-end translations happen when the trace cache misses (build
        # mode fetches from L2) plus a small baseline.
        itlb_acc_per_instr = (
            tc_acc_per_instr * tc_miss + _ITLB_BASE_LOOKUPS_PER_UOP
        )
        itlb_capacity = effective_capacity(
            p.itlb.reach_bytes,
            core_sharers,
            1.0 if same_code else 0.0,
        )
        itlb_base = loop_thrash_miss_rate(
            phase.code_footprint_bytes, itlb_capacity, width=0.30
        )
        os_noise = _ITLB_OS_NOISE * max(total_visible_contexts - 1, 0)
        itlb_miss = min(1.0, itlb_base + os_noise)

        # --- DTLB -------------------------------------------------------
        dtlb_miss = mix.miss_rate(
            p.dtlb.reach_bytes,
            p.dtlb.page_bytes,
            n_threads=n_threads,
            sharers=core_sharers,
            same_program=same_data,
        )
        dtlb_acc_per_instr = phase.mem_ops_per_instr

        return LevelRates(
            tc_accesses_per_instr=tc_acc_per_instr,
            tc_miss_rate=tc_miss,
            l1_accesses_per_instr=l1_acc_per_instr,
            l1_miss_rate=l1_miss,
            l2_accesses_per_instr=l2_acc_per_instr,
            l2_miss_rate=l2_local,
            l2_misses_per_instr=l2_miss_per_instr,
            itlb_accesses_per_instr=itlb_acc_per_instr,
            itlb_miss_rate=itlb_miss,
            dtlb_accesses_per_instr=dtlb_acc_per_instr,
            dtlb_miss_rate=dtlb_miss,
            dtlb_misses_per_instr=dtlb_acc_per_instr * dtlb_miss,
            extra_levels=tuple(extra_rates),
        )
