"""Benchmark: regenerate the Figure-2 counter panels (single program)."""

from repro.core.study import Study
from repro.experiments import fig2_single_program


def test_bench_fig2_counters(benchmark):
    def regenerate():
        # Fresh study: the benchmark measures the full simulation sweep.
        return fig2_single_program.run(Study("B"))

    result = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    print()
    print(fig2_single_program.report(result))
    # Headline shapes of the figure:
    tc_mg = result.panels["tc_miss_rate"]["MG"]
    assert tc_mg["ht_on_8_2"] < tc_mg["ht_off_4_2"]  # MG trace-cache share
    bp_cg = result.panels["branch_prediction_rate"]["CG"]
    assert bp_cg["ht_on_4_1"] < bp_cg["ht_off_2_1"]  # CG HT outlier
