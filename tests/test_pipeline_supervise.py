"""Pipeline-level supervision: deadlines, cancellation, journal resume.

``test_pipeline_faults.py`` covers failure isolation and manifest-based
resume; this module covers the supervision layer on top — budgets and
cancellation flowing through ``run_pipeline``, the write-ahead journal,
and resuming a run that never wrote a manifest.
"""

import json

import pytest

from repro import supervise
from repro.core.context import RunContext
from repro.experiments.pipeline import (
    EXIT_CANCELLED,
    ExperimentCancellation,
    MANIFEST_SCHEMA,
    ResumeError,
    load_resume_state,
    run_pipeline,
    write_artifacts,
)
from repro.supervise import Budget, Journal
from repro.supervise.journal import JOURNAL_NAME, JOURNAL_SCHEMA, load_journal

CHEAP = ["sec3-lmbench", "omp-overheads"]
DEP_CHAIN = ["fig3", "table2"]


class TestCancellation:
    def test_pretripped_token_cancels_everything(self):
        supervise.token().cancel("drill")
        out = run_pipeline(RunContext(), only=CHEAP)
        assert not out.records and not out.failures
        assert sorted(out.cancelled) == sorted(CHEAP)
        assert out.cancelled["sec3-lmbench"].reason == "drill"
        assert not out.ok
        assert out.exit_code == EXIT_CANCELLED

    def test_cancellation_mid_wave_stops_later_tasks(self, monkeypatch):
        # The first experiment cancels the campaign from inside; the
        # next serial task must not start.
        from repro.experiments import sec3_lmbench

        real = sec3_lmbench.run

        def cancel_then_run(ctx):
            supervise.token().cancel("operator stop")
            return real(ctx)

        monkeypatch.setattr(sec3_lmbench, "run", cancel_then_run)
        out = run_pipeline(RunContext(), only=CHEAP)
        # The cancelling experiment itself completed (cooperative drain
        # honours finished work); its successor was cancelled.
        assert "sec3-lmbench" in out.records
        assert "omp-overheads" in out.cancelled
        assert out.cancelled["omp-overheads"].reason == "operator stop"

    def test_keyboard_interrupt_becomes_cancellation(self, monkeypatch):
        from repro.experiments import sec3_lmbench

        def interrupted(ctx):
            raise KeyboardInterrupt

        monkeypatch.setattr(sec3_lmbench, "run", interrupted)
        out = run_pipeline(RunContext(), only=CHEAP)
        assert out.cancelled["sec3-lmbench"].reason == "keyboard interrupt"
        # The token is set, so everything after it cancels too.
        assert "omp-overheads" in out.cancelled
        assert supervise.token().cancelled
        assert out.exit_code == EXIT_CANCELLED

    def test_cancelled_manifest_shape(self):
        supervise.token().cancel("drill")
        out = run_pipeline(RunContext(), only=CHEAP)
        m = out.manifest
        assert m["schema"] == MANIFEST_SCHEMA
        assert m["status"] == "cancelled"
        entry = m["cancelled"]["sec3-lmbench"]
        assert entry["reason"] == "drill"
        assert entry["wave"] == 0
        assert m["experiments"] == {}

    def test_cancelled_run_is_resumable(self, tmp_path, monkeypatch):
        from repro.experiments import omp_overheads

        real = omp_overheads.run

        def cancel_after(ctx):
            result = real(ctx)
            supervise.token().cancel("late stop")
            return result

        monkeypatch.setattr(omp_overheads, "run", cancel_after)
        first = run_pipeline(
            RunContext(), only=["omp-overheads"] + DEP_CHAIN
        )
        write_artifacts(first, tmp_path)
        assert first.exit_code == EXIT_CANCELLED
        assert "omp-overheads" in first.records
        # table2 (wave 1) was cancelled; everything wave 0 finished.
        assert "table2" in first.cancelled

        supervise.reset()
        monkeypatch.setattr(omp_overheads, "run", real)
        resumed = run_pipeline(
            RunContext(),
            only=["omp-overheads"] + DEP_CHAIN,
            resume=load_resume_state(tmp_path),
        )
        assert resumed.ok
        assert sorted(resumed.resumed) == ["fig3", "omp-overheads"]
        assert resumed.executed == ["table2"]


class TestDeadlines:
    def test_experiment_deadline_is_contained_failure(self):
        # An already-expired per-experiment allowance: the cooperative
        # check fires at the first engine step, and the overrun is a
        # normal contained failure with provenance.  (Engine-backed
        # experiments only — purely analytic ones have no step loop for
        # the check to interrupt.)
        budget = Budget(experiment_timeout_s=1e-9).arm()
        out = run_pipeline(
            RunContext(budget=budget, cache_enabled=False), only=["fig3"]
        )
        failure = out.failures["fig3"]
        assert failure.error_type == "DeadlineExceeded"
        assert "wall-time budget" in failure.message
        assert "fig3" in failure.message

    def test_run_budget_cancels_remaining_waves(self):
        # A run budget armed in the distant past: the first stop check
        # cancels everything before any experiment starts.
        budget = Budget(run_timeout_s=1e-9).arm(now=0.0)
        out = run_pipeline(RunContext(budget=budget), only=CHEAP)
        assert sorted(out.cancelled) == sorted(CHEAP)
        assert "run budget exhausted" in (
            out.cancelled["sec3-lmbench"].reason
        )
        assert out.exit_code == EXIT_CANCELLED

    def test_budget_recorded_in_manifest(self):
        budget = Budget(run_timeout_s=3600, experiment_timeout_s=600).arm()
        out = run_pipeline(RunContext(budget=budget), only=["sec3-lmbench"])
        assert out.ok
        assert out.manifest["supervision"]["budget"] == {
            "run_timeout_s": 3600, "experiment_timeout_s": 600,
        }

    def test_unbudgeted_manifest_supervision_block(self):
        out = run_pipeline(RunContext(), only=["sec3-lmbench"])
        assert out.manifest["supervision"] == {
            "budget": None, "breakers": {},
        }


class TestJournaledRuns:
    def test_clean_run_journals_every_outcome(self, tmp_path):
        journal = Journal.open(tmp_path, selected=CHEAP, jobs=1)
        out = run_pipeline(RunContext(), only=CHEAP, journal=journal)
        journal.close()
        assert out.ok
        state = load_journal(tmp_path / JOURNAL_NAME)
        assert sorted(state.finished) == sorted(CHEAP)
        assert state.in_flight == []
        assert state.committed_waves == [0]
        # Journaled rows are the exact manifest rows.
        assert state.finished["sec3-lmbench"] == (
            out.manifest["experiments"]["sec3-lmbench"]
        )

    def test_journaled_run_writes_artifacts_incrementally(self, tmp_path):
        journal = Journal.open(tmp_path, selected=CHEAP, jobs=1)
        seen = {}

        def probe(msg):
            if msg.startswith("ran "):
                exp_id = msg.split()[1]
                seen[exp_id] = (
                    (tmp_path / f"{exp_id}.txt").exists(),
                    (tmp_path / f"{exp_id}.json").exists(),
                )

        out = run_pipeline(
            RunContext(), only=CHEAP, journal=journal, progress=probe
        )
        journal.close()
        # At the moment each completion was announced, its artifact
        # pair was already on disk.
        assert seen == {exp_id: (True, True) for exp_id in CHEAP}
        # And they are byte-identical to the final write_artifacts pass.
        before = (tmp_path / "sec3-lmbench.json").read_bytes()
        write_artifacts(out, tmp_path)
        assert (tmp_path / "sec3-lmbench.json").read_bytes() == before

    def test_failures_and_cancellations_journaled(self, tmp_path, fail_plan):
        journal = Journal.open(tmp_path)
        run_pipeline(
            RunContext(faults=fail_plan("fig3")),
            only=DEP_CHAIN,
            journal=journal,
        )
        journal.close()
        state = load_journal(tmp_path / JOURNAL_NAME)
        assert state.failed["fig3"]["error_type"] == "InjectedFault"
        assert state.skipped == {"table2": ["fig3"]}


class TestJournalResume:
    @staticmethod
    def _killed_run(tmp_path, only=CHEAP):
        """A journaled run whose manifest never landed (as after
        SIGKILL between the last task and the final write)."""
        journal = Journal.open(tmp_path, selected=list(only), jobs=1)
        out = run_pipeline(RunContext(), only=only, journal=journal)
        journal.close()  # no finalize: the WAL survives
        assert not (tmp_path / "manifest.json").exists()
        return out

    def test_resume_without_manifest_uses_journal(self, tmp_path):
        first = self._killed_run(tmp_path)
        state = load_resume_state(tmp_path)
        assert sorted(state.completed) == sorted(CHEAP)
        assert state.manifest["source"] == "journal"
        assert state.manifest["status"] == "interrupted"

        resumed = run_pipeline(RunContext(), only=CHEAP, resume=state)
        assert resumed.ok
        assert sorted(resumed.resumed) == sorted(CHEAP)
        assert resumed.executed == []
        # Adopted rows are identical to the uninterrupted run's rows.
        assert resumed.manifest["experiments"] == (
            first.manifest["experiments"]
        )

    def test_journal_resume_reruns_in_flight(self, tmp_path):
        self._killed_run(tmp_path)
        # Hand-append a started-but-unfinished record: in flight at the
        # "crash", so the resume must re-run it.
        with open(tmp_path / JOURNAL_NAME, "a") as fh:
            fh.write(json.dumps(
                {"type": "task-started", "id": "fig3", "wave": 1}
            ) + "\n")
        state = load_resume_state(tmp_path)
        assert state.manifest["journal"]["in_flight"] == ["fig3"]
        assert "fig3" not in state.completed
        resumed = run_pipeline(
            RunContext(), only=CHEAP + ["fig3"], resume=state
        )
        assert resumed.ok
        assert resumed.executed == ["fig3"]

    def test_torn_journal_resumes_from_prefix(self, tmp_path):
        self._killed_run(tmp_path)
        with open(tmp_path / JOURNAL_NAME, "a") as fh:
            fh.write('{"type": "task-finished", "id": "fi')  # the tear
        state = load_resume_state(tmp_path)
        assert state.manifest["journal"]["torn"] is True
        assert sorted(state.completed) == sorted(CHEAP)

    def test_journal_missing_artifacts_rerun(self, tmp_path):
        self._killed_run(tmp_path)
        (tmp_path / "sec3-lmbench.json").unlink()
        state = load_resume_state(tmp_path)
        # A journaled completion without its artifact pair is not
        # trusted — that experiment re-runs.
        assert sorted(state.completed) == ["omp-overheads"]

    def test_manifest_wins_over_leftover_journal(self, tmp_path):
        # A crash between the manifest write and the journal unlink
        # leaves both; the manifest is authoritative.
        out = run_pipeline(RunContext(), only=CHEAP)
        write_artifacts(out, tmp_path)
        Journal.open(tmp_path, selected=["decoy"]).close()
        state = load_resume_state(tmp_path)
        assert state.manifest["status"] == "complete"
        assert "source" not in state.manifest
        assert sorted(state.completed) == sorted(CHEAP)

    def test_newer_schema_journal_refused_loudly(self, tmp_path):
        from repro.supervise.journal import JournalSchemaError

        (tmp_path / JOURNAL_NAME).write_text(json.dumps({
            "type": "run-started", "schema": JOURNAL_SCHEMA + 1,
        }) + "\n")
        with pytest.raises(JournalSchemaError, match="newer"):
            load_resume_state(tmp_path)

    def test_structurally_corrupt_journal_is_resume_error(self, tmp_path):
        (tmp_path / JOURNAL_NAME).write_text(
            "garbage\n" + json.dumps({"type": "wave-committed", "wave": 0})
            + "\n"
        )
        with pytest.raises(ResumeError, match="corrupt journal"):
            load_resume_state(tmp_path)

    def test_nothing_at_all_is_resume_error(self, tmp_path):
        with pytest.raises(ResumeError, match="no manifest"):
            load_resume_state(tmp_path)


class TestJournaledPoolPath:
    def test_pool_wave_journals_results(self, tmp_path, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        journal = Journal.open(tmp_path, selected=CHEAP, jobs=2)
        out = run_pipeline(
            RunContext(jobs=2), only=CHEAP, journal=journal
        )
        journal.close()
        assert out.ok
        state = load_journal(tmp_path / JOURNAL_NAME)
        assert sorted(state.finished) == sorted(CHEAP)
        assert state.in_flight == []
        # Incremental artifacts landed on the pool path too.
        for exp_id in CHEAP:
            assert (tmp_path / f"{exp_id}.json").exists()
