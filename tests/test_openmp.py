"""Tests for the OpenMP runtime model: partitioners and sync costs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.openmp.env import OMPEnvironment, ScheduleKind
from repro.openmp.loops import (
    chunks_per_thread,
    dynamic_chunks,
    guided_chunks,
    partition_imbalance,
    static_chunks,
)
from repro.openmp.sync import (
    barrier_cycles,
    fork_join_cycles,
    reduction_cycles,
    sync_costs,
)


def assert_exact_cover(chunks, n_iters):
    """Every iteration assigned exactly once."""
    seen = []
    for c in chunks:
        seen.extend(range(c.start, c.end))
    assert sorted(seen) == list(range(n_iters))


class TestStatic:
    def test_even_split(self):
        chunks = static_chunks(100, 4)
        assert [c.size for c in chunks] == [25, 25, 25, 25]
        assert_exact_cover(chunks, 100)

    def test_remainder_spreads_to_leading_threads(self):
        chunks = static_chunks(10, 4)
        assert [c.size for c in chunks] == [3, 3, 2, 2]

    def test_contiguous_per_thread(self):
        chunks = static_chunks(100, 4)
        for c in chunks:
            assert c.end > c.start

    def test_chunked_round_robin(self):
        chunks = static_chunks(10, 2, chunk=2)
        assert [c.thread for c in chunks] == [0, 1, 0, 1, 0]
        assert_exact_cover(chunks, 10)

    def test_zero_iterations(self):
        assert static_chunks(0, 4) == []

    def test_more_threads_than_iterations(self):
        chunks = static_chunks(2, 8)
        assert_exact_cover(chunks, 2)
        assert all(c.thread < 2 for c in chunks)

    @given(st.integers(0, 500), st.integers(1, 16), st.integers(0, 7))
    @settings(max_examples=60)
    def test_exact_cover_property(self, n, t, chunk):
        assert_exact_cover(static_chunks(n, t, chunk), n)

    @given(st.integers(1, 500), st.integers(1, 16))
    @settings(max_examples=40)
    def test_default_static_balanced(self, n, t):
        totals = chunks_per_thread(static_chunks(n, t), t)
        nonzero = [x for x in totals if x]
        assert max(nonzero) - min(nonzero) <= 1


class TestDynamic:
    def test_uniform_costs_balanced(self):
        chunks = dynamic_chunks(100, 4, chunk=5)
        totals = chunks_per_thread(chunks, 4)
        assert max(totals) - min(totals) <= 5

    def test_skewed_costs_rebalanced(self):
        # One expensive chunk: dynamic gives the loaded thread fewer.
        costs = [100.0] + [1.0] * 19
        chunks = dynamic_chunks(20, 2, chunk=1, costs=costs)
        totals = chunks_per_thread(chunks, 2)
        loaded = chunks[0].thread
        assert totals[loaded] < totals[1 - loaded]

    @given(st.integers(0, 300), st.integers(1, 8), st.integers(1, 10))
    @settings(max_examples=50)
    def test_exact_cover_property(self, n, t, chunk):
        assert_exact_cover(dynamic_chunks(n, t, chunk), n)


class TestGuided:
    def test_decreasing_chunk_sizes(self):
        chunks = guided_chunks(1000, 4, chunk=1)
        sizes = [c.size for c in chunks]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == 250

    def test_respects_minimum(self):
        chunks = guided_chunks(100, 4, chunk=10)
        assert all(c.size >= 10 or c.end == 100 for c in chunks)

    @given(st.integers(0, 300), st.integers(1, 8), st.integers(1, 10))
    @settings(max_examples=50)
    def test_exact_cover_property(self, n, t, chunk):
        assert_exact_cover(guided_chunks(n, t, chunk), n)


class TestImbalance:
    def test_single_thread_perfect(self):
        assert partition_imbalance(ScheduleKind.STATIC, 0.5, 1) == 0.0

    def test_static_exposes_intrinsic(self):
        imb = partition_imbalance(ScheduleKind.STATIC, 0.2, 8)
        assert imb == pytest.approx(0.2 * 7 / 8)

    def test_dynamic_rebalances(self):
        s = partition_imbalance(ScheduleKind.STATIC, 0.2, 8)
        d = partition_imbalance(ScheduleKind.DYNAMIC, 0.2, 8)
        g = partition_imbalance(ScheduleKind.GUIDED, 0.2, 8)
        assert d < g < s

    @given(st.floats(0, 1), st.integers(1, 16))
    @settings(max_examples=30)
    def test_nonnegative(self, intrinsic, t):
        for kind in ScheduleKind:
            assert partition_imbalance(kind, intrinsic, t) >= 0.0


class TestSyncCosts:
    def test_single_thread_free(self):
        assert barrier_cycles(1) == 0.0
        assert fork_join_cycles(1) == 0.0
        assert reduction_cycles(1) == 0.0

    def test_grows_with_team(self):
        assert barrier_cycles(8, 4, 2) > barrier_cycles(2, 1, 1)

    def test_cross_chip_costlier_than_sibling(self):
        assert barrier_cycles(2, 2, 2) > barrier_cycles(2, 1, 1)

    def test_fork_join_exceeds_barrier(self):
        assert fork_join_cycles(4, 2, 1) > barrier_cycles(4, 2, 1)

    def test_bundle(self):
        costs = sync_costs(4, 4, 2)
        assert costs.barrier > 0
        assert costs.fork_join > costs.barrier
        assert costs.reduction > 0


class TestEnvironment:
    def test_defaults(self):
        env = OMPEnvironment()
        assert env.schedule is ScheduleKind.STATIC
        assert env.resolve_threads(4) == 4

    def test_explicit_threads(self):
        assert OMPEnvironment(num_threads=2).resolve_threads(8) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            OMPEnvironment(num_threads=0)
        with pytest.raises(ValueError):
            OMPEnvironment(chunk=-1)
