"""Tests for ASCII figure rendering."""

import pytest

from repro.analysis.figures import grouped_bars, hbar, speedup_figure
from repro.analysis.speedup import SpeedupTable


class TestHbar:
    def test_full_scale(self):
        assert hbar(2.0, 2.0, width=10) == "#" * 10

    def test_half_scale(self):
        assert hbar(1.0, 2.0, width=10) == "#" * 5

    def test_clamps(self):
        assert hbar(5.0, 2.0, width=10) == "#" * 10
        assert hbar(-1.0, 2.0, width=10) == ""

    def test_zero_max(self):
        assert hbar(1.0, 0.0) == ""


class TestGroupedBars:
    def test_structure(self):
        grid = {"CG": {"a": 1.0, "b": 2.0}, "EP": {"a": 4.0}}
        out = grouped_bars(grid, ["a", "b"], title="T", width=8)
        assert out.startswith("T")
        assert "CG:" in out and "EP:" in out
        # EP's a=4.0 is the max -> full width.
        assert "#" * 8 in out

    def test_missing_series_skipped(self):
        grid = {"EP": {"a": 1.0}}
        out = grouped_bars(grid, ["a", "b"])
        assert "b" not in out.replace("bars", "")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            grouped_bars({"CG": {}}, ["a"])

    def test_fixed_vmax(self):
        grid = {"CG": {"a": 1.0}}
        out = grouped_bars(grid, ["a"], width=10, vmax=2.0)
        assert "#" * 5 in out and "#" * 6 not in out


class TestSpeedupFigure:
    def test_renders_from_table(self):
        t = SpeedupTable()
        t.set("CG", "c1", 1.5)
        t.set("CG", "c2", 3.0)
        out = speedup_figure(t, ["c1", "c2"], width=12)
        assert "CG:" in out
        assert "3.00" in out
