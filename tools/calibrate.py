#!/usr/bin/env python
"""Calibration dashboard: metric grid for all benchmarks x configurations.

Dev tool used while tuning workload models against the paper's qualitative
findings (see DESIGN.md section 4).  Run: python tools/calibrate.py [classletter]
"""

import sys

from repro.machine import get_config
from repro.npb import build_workload
from repro.sim import Engine

CONFIGS = [
    "ht_on_2_1", "ht_off_2_1", "ht_on_4_1", "ht_off_2_2",
    "ht_on_4_2", "ht_off_4_2", "ht_on_8_2",
]
BENCH = ["CG", "MG", "SP", "FT", "LU", "EP", "BT", "IS"]


def main() -> None:
    cls = sys.argv[1] if len(sys.argv) > 1 else "B"
    rows = {}
    serial = {}
    for b in BENCH:
        w = build_workload(b, cls)
        serial[b] = Engine(get_config("serial")).run_single(w)
        rows[b] = {}
        for c in CONFIGS:
            rows[b][c] = Engine(get_config(c)).run_single(w)

    print("== speedup over serial ==")
    print("%-4s" % "app", *["%10s" % c for c in CONFIGS])
    for b in BENCH:
        print("%-4s" % b, *[
            "%10.2f" % (serial[b].runtime_seconds / rows[b][c].runtime_seconds)
            for c in CONFIGS
        ])
    avg = {
        c: sum(serial[b].runtime_seconds / rows[b][c].runtime_seconds
               for b in BENCH) / len(BENCH)
        for c in CONFIGS
    }
    print("%-4s" % "AVG", *["%10.2f" % avg[c] for c in CONFIGS])

    for metric in ["cpi", "l1", "l2", "tc", "bp", "stall", "pf", "busutil"]:
        print(f"== {metric} ==")
        hdr = ["serial"] + CONFIGS
        print("%-4s" % "app", *["%10s" % c for c in hdr])
        for b in BENCH:
            vals = []
            for c in hdr:
                r = serial[b] if c == "serial" else rows[b][c]
                m = r.metrics(0)
                v = {
                    "cpi": m.cpi,
                    "l1": m.l1_miss_rate,
                    "l2": m.l2_miss_rate,
                    "tc": m.tc_miss_rate,
                    "bp": m.branch_prediction_rate,
                    "stall": m.stall_fraction,
                    "pf": m.prefetch_bus_fraction,
                    "busutil": max(p.bus_utilization for p in r.phase_log),
                }[metric]
                vals.append("%10.3f" % v)
            print("%-4s" % b, *vals)


if __name__ == "__main__":
    main()
