"""Activity-based power and energy model.

The paper's introduction motivates chip multithreading with power:
"increasing energy consumption and excessive heat generation ... has
driven the processor industry to develop aggressive CMT processors".
This module closes that loop: given a simulation run's counters it
estimates energy and energy-delay product, so the Table-2 architectures
can be ranked the way the industry's motivation implies — by energy
efficiency, not just speed.

The model is standard activity-based accounting calibrated to NetBurst
era datasheets (a 2.8 GHz Paxville chip dissipates ~135 W TDP, two cores
plus uncore):

``E = sum_cores(P_static * t_active + EPI * instructions)
     + P_uncore * t * n_chips + E_dram_per_line * bus_lines + P_idle...``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.counters.events import Event
from repro.sim.results import RunResult


@dataclass(frozen=True)
class PowerParams:
    """Calibration constants for the energy model."""

    #: Static (leakage + clocked-idle) watts per powered core.
    core_static_w: float = 18.0
    #: Dynamic energy per retired uop (nanojoules).
    energy_per_uop_nj: float = 11.0
    #: Extra core power while stalled relative to executing (clock
    #: network and replay machinery keep running on NetBurst).
    stall_energy_fraction: float = 0.55
    #: Additional static power when Hyper-Threading is enabled on a core
    #: (duplicated architectural state stays powered).
    ht_static_w: float = 1.5
    #: Uncore (FSB interface, caches' periphery) watts per chip.
    uncore_w_per_chip: float = 14.0
    #: DRAM + memory-controller energy per 128-byte line transferred (nJ).
    dram_energy_per_line_nj: float = 70.0
    #: DRAM background power (watts).
    dram_background_w: float = 9.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one run."""

    config: str
    runtime_seconds: float
    core_dynamic_j: float
    core_static_j: float
    uncore_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        return (
            self.core_dynamic_j
            + self.core_static_j
            + self.uncore_j
            + self.dram_j
        )

    @property
    def average_watts(self) -> float:
        return self.total_j / self.runtime_seconds

    @property
    def energy_delay_j_s(self) -> float:
        """Energy-delay product (lower is better)."""
        return self.total_j * self.runtime_seconds


class PowerModel:
    """Estimates run energy from counters and configuration."""

    def __init__(self, params: Optional[PowerParams] = None):
        self.params = params if params is not None else PowerParams()

    def estimate(self, result: RunResult) -> EnergyReport:
        """Energy report for a completed run."""
        p = self.params
        config = result.config
        topo = config.topology()
        t = result.runtime_seconds
        counters = result.collector.total()

        instr = counters[Event.INSTR_RETIRED]
        stall = counters[Event.STALL_CYCLES]
        cycles = counters[Event.CYCLES]
        exec_fraction = 1.0 - (stall / cycles if cycles else 0.0)

        # Dynamic: executing uops at full energy; stalled cycles burn the
        # stall fraction of the executing rate.
        core_dynamic = instr * p.energy_per_uop_nj * 1e-9
        if cycles:
            core_dynamic *= exec_fraction + (1 - exec_fraction) * (
                p.stall_energy_fraction
            )

        static_per_core = p.core_static_w + (
            p.ht_static_w if config.ht else 0.0
        )
        core_static = static_per_core * topo.n_cores * t
        uncore = p.uncore_w_per_chip * topo.n_chips * t

        lines = (
            counters[Event.BUS_TRANS_DEMAND]
            + counters[Event.BUS_TRANS_PREFETCH]
            + counters[Event.COHERENCE_TRANSFER]
        )
        dram = lines * p.dram_energy_per_line_nj * 1e-9 + (
            p.dram_background_w * t
        )

        return EnergyReport(
            config=config.name,
            runtime_seconds=t,
            core_dynamic_j=core_dynamic,
            core_static_j=core_static,
            uncore_j=uncore,
            dram_j=dram,
        )


def energy_per_instruction_nj(report: EnergyReport, instructions: float) -> float:
    """Total energy per uop in nanojoules."""
    if instructions <= 0:
        raise ValueError("instructions must be positive")
    return report.total_j / instructions * 1e9
