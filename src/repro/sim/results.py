"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.counters.collector import Collector, CounterSet
from repro.counters.timeline import Timeline
from repro.counters.metrics import DerivedMetrics, derive_metrics
from repro.machine.configurations import MachineConfig
from repro.osmodel.process import ProgramSpec


@dataclass(frozen=True)
class PhaseRecord:
    """Per-phase trace entry for debugging and ablation studies."""

    program_id: int
    phase_name: str
    wall_seconds: float
    mean_cpi: float
    bus_utilization: float


@dataclass
class ProgramResult:
    """Outcome of one program in a run."""

    spec: ProgramSpec
    runtime_seconds: float
    counters: CounterSet

    @property
    def metrics(self) -> DerivedMetrics:
        return derive_metrics(self.counters)

    @property
    def name(self) -> str:
        return self.spec.workload.name


@dataclass
class RunResult:
    """Outcome of a whole simulation run (one or more programs)."""

    config: MachineConfig
    programs: List[ProgramResult]
    collector: Collector
    phase_log: List[PhaseRecord] = field(default_factory=list)
    timeline: Timeline = field(default_factory=Timeline)

    @property
    def runtime_seconds(self) -> float:
        """Single-program runtime; for multiprogram, the last finisher."""
        return max(p.runtime_seconds for p in self.programs)

    def program(self, program_id: int) -> ProgramResult:
        for p in self.programs:
            if p.spec.program_id == program_id:
                return p
        raise KeyError(f"no program with id {program_id}")

    def metrics(self, program_id: Optional[int] = None) -> DerivedMetrics:
        """Derived metrics for one program (or the whole run)."""
        if program_id is None:
            return derive_metrics(self.collector.total())
        return self.program(program_id).metrics

    def speedup_over(self, serial_runtime: float, program_id: int = 0) -> float:
        """Wall-clock speedup of a program versus a serial baseline."""
        rt = self.program(program_id).runtime_seconds
        if rt <= 0:
            raise ValueError("program runtime must be positive")
        return serial_runtime / rt
