"""Fully-associative LRU TLB simulator (structural view).

Shares the behavioural contract of :class:`repro.mem.cache.SetAssocCache`
but tracks page-granularity translations with a fully-associative array,
matching the Xeon's ITLB/DTLB organization closely enough for the paper's
miss-rate comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.machine.params import TLBParams


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Fully-associative translation lookaside buffer with LRU."""

    def __init__(self, params: TLBParams):
        self.params = params
        self._pages = np.full(params.entries, -1, dtype=np.int64)
        self._stamp = np.zeros(params.entries, dtype=np.int64)
        self._clock = 0
        self.stats = TLBStats()

    def reset(self) -> None:
        self._pages.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.stats = TLBStats()

    def access(self, address: int) -> bool:
        """Translate one byte address; True on a TLB miss."""
        page = address // self.params.page_bytes
        self._clock += 1
        self.stats.accesses += 1
        hits = np.nonzero(self._pages == page)[0]
        if hits.size:
            self._stamp[hits[0]] = self._clock
            return False
        victim = int(np.argmin(self._stamp))
        self._pages[victim] = page
        self._stamp[victim] = self._clock
        self.stats.misses += 1
        return True

    def run(self, addresses: np.ndarray) -> TLBStats:
        """Translate a whole stream; returns cumulative stats."""
        pages_stream = np.asarray(addresses, dtype=np.int64) // self.params.page_bytes
        pages, stamp = self._pages, self._stamp
        clock = self._clock
        stats = self.stats
        for p in pages_stream:
            clock += 1
            stats.accesses += 1
            hits = np.nonzero(pages == p)[0]
            if hits.size:
                stamp[hits[0]] = clock
            else:
                victim = int(np.argmin(stamp))
                pages[victim] = p
                stamp[victim] = clock
                stats.misses += 1
        self._clock = clock
        return stats
