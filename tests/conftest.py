"""Shared test configuration: Hypothesis profiles and common fixtures.

Hypothesis profiles (satellite of the correctness-harness PR):

* ``ci`` — derandomized (fixed seed) with the deadline off, so property
  tests are deterministic in CI: same examples every run, no flakes
  from machine speed.  Selected with ``HYPOTHESIS_PROFILE=ci``.
* ``dev`` — the default locally: randomized exploration (new examples
  every run) with the deadline off (simulation-backed properties are
  far slower than Hypothesis' 200 ms default budget expects).

To reproduce a ``dev``-profile failure, copy the ``@reproduce_failure``
decorator (or the seed) Hypothesis prints with the failing example —
see ``docs/TESTING.md``.

Shared fixtures live here instead of being re-declared per test module:
``study`` (the memoized class-B study), ``fail_plan``/``strip_timings``
(fault-drill helpers), and the autouse ``clean_runtime_switches`` that
isolates the process-global fault plan and verification switch between
tests.
"""

import json
import os

import pytest
from hypothesis import settings

from repro.core.study import Study
from repro.testing import faults
from repro.testing.faults import FaultPlan

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="module")
def study():
    """The shared class-B study (memoized workloads + run cache)."""
    return Study("B")


@pytest.fixture(autouse=True)
def clean_runtime_switches(monkeypatch):
    """Isolate process-global switches between tests.

    The fault plan, the verification switch, and the machine-axis
    batching mode are process-global (so pool workers inherit them); a
    test that activates any of them must not leak it into the next
    test, and an externally-set ``REPRO_FAULTS``/``REPRO_VERIFY``/
    ``REPRO_BATCH``/``REPRO_TIMEOUT`` must not leak in.  Batching
    counters are drained on both sides so per-test stats assertions
    start from zero, and supervision state (budget, task deadline,
    cancel token, circuit breakers) is fully reset.
    """
    from repro import supervise, verify
    from repro.sim import batch

    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(verify.VERIFY_ENV, raising=False)
    monkeypatch.delenv(batch.BATCH_ENV, raising=False)
    monkeypatch.delenv(supervise.TIMEOUT_ENV, raising=False)
    monkeypatch.delenv(supervise.EXPERIMENT_TIMEOUT_ENV, raising=False)
    monkeypatch.delenv(supervise.JOURNAL_ENV, raising=False)
    for key in [k for k in os.environ if k.startswith("REPRO_SERVE_")]:
        monkeypatch.delenv(key, raising=False)
    faults.deactivate()
    verify.deactivate()
    batch.set_mode(None)
    batch.take_stats()
    supervise.reset()
    yield
    faults.deactivate()
    verify.deactivate()
    batch.set_mode(None)
    batch.take_stats()
    supervise.reset()


@pytest.fixture
def serve_client():
    """An in-process serve daemon on an ephemeral port, auto-shutdown.

    Yields a small client wrapper around the running :class:`ServeApp`
    (fast class-S jobs by default keep the HTTP tests snappy); the
    daemon is drained and its socket released at teardown even when the
    test fails.
    """
    import json as _json
    import urllib.error
    import urllib.request

    from repro.serve import Scheduler, ServeApp

    class _Client:
        def __init__(self, app):
            self.app = app
            self.scheduler = app.scheduler
            self.base = app.url

        def request(self, method, path, payload=None):
            data = (
                None if payload is None
                else _json.dumps(payload).encode()
            )
            req = urllib.request.Request(
                self.base + path, data=data, method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(req, timeout=30) as resp:
                    return resp.status, _json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                return exc.code, _json.loads(exc.read())

        def get(self, path):
            return self.request("GET", path)

        def post(self, path, payload):
            return self.request("POST", path, payload)

        def delete(self, path):
            return self.request("DELETE", path)

        def wait(self, job_id, timeout_s=30.0):
            """Poll a job to a terminal state; returns its record."""
            import time as _time

            deadline = _time.monotonic() + timeout_s
            while _time.monotonic() < deadline:
                status, job = self.get(f"/jobs/{job_id}")
                assert status == 200, (status, job)
                if job["state"] in ("done", "failed", "cancelled"):
                    return job
                _time.sleep(0.005)
            raise AssertionError(f"job {job_id} did not settle")

    apps = []

    def _make(**scheduler_kwargs):
        scheduler_kwargs.setdefault("workers", 2)
        app = ServeApp(Scheduler(**scheduler_kwargs)).start()
        apps.append(app)
        return _Client(app)

    yield _make
    for app in apps:
        app.close(drain_timeout_s=1.0)


@pytest.fixture
def fail_plan():
    """Factory for a plan failing the given experiment ids."""
    def _fail(*ids):
        return FaultPlan(fail_experiments={i: "" for i in ids})
    return _fail


@pytest.fixture
def strip_timings():
    """A manifest with every timing/cache counter removed — the part
    that must be byte-identical between a clean and a resumed run."""
    def _strip(manifest):
        m = json.loads(json.dumps(manifest))
        m.pop("cache")
        m.pop("total_wall_time_s")
        for entry in m["experiments"].values():
            entry.pop("wall_time_s")
            entry.pop("cache")
        return m
    return _strip
