"""Tests for the process-pool sweep runner."""

import os

import pytest

from repro.sim import parallel
from repro.sim.parallel import (
    get_default_jobs,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
    take_fallback_report,
)
from repro.testing import faults
from repro.testing.faults import FaultPlan


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"task {x}")


def _os_boom(x):
    raise OSError(f"task io failure {x}")


@pytest.fixture(autouse=True)
def reset_default_jobs():
    set_default_jobs(None)
    take_fallback_report()
    faults.deactivate()
    yield
    set_default_jobs(None)
    faults.deactivate()


@pytest.fixture
def pool_host(monkeypatch):
    """Pretend the host has cores so resolve_jobs does not clamp the
    pool path away on single-CPU CI containers."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)


class TestJobResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        assert get_default_jobs() == 1

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "4")
        assert get_default_jobs() == 4

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "4")
        set_default_jobs(2)
        assert get_default_jobs() == 2

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "many")
        assert get_default_jobs() == 1

    def test_resolve_clamps_to_host(self):
        assert resolve_jobs(10_000) <= (os.cpu_count() or 1)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            set_default_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_pool_path_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [5], jobs=4) == [25]

    def test_unpicklable_callable_falls_back_to_serial(self, pool_host):
        # Lambdas cannot cross a process boundary; the map must still
        # return correct results via the serial fallback.
        assert parallel_map(lambda x: x + 1, [1, 2, 3], jobs=2) == [2, 3, 4]
        report = take_fallback_report()
        assert report.reason == "unpicklable-callable"
        assert report.completed == 0 and report.retried == 3

    def test_task_exceptions_propagate(self):
        with pytest.raises(ValueError, match="task"):
            parallel_map(_boom, [1, 2], jobs=1)
        with pytest.raises(ValueError, match="task"):
            parallel_map(_boom, [1, 2], jobs=2)

    def test_task_oserror_propagates_not_swallowed(self, pool_host):
        """Regression: an OSError raised *by the task* used to be
        mistaken for pool infrastructure failure, silently re-running
        the whole list serially (and raising only on the second pass)."""
        with pytest.raises(OSError, match="task io failure"):
            parallel_map(_os_boom, [1, 2], jobs=2)
        # And it was a task failure, not a pool degradation.
        assert take_fallback_report() is None


class TestBrokenPoolRetry:
    def test_worker_death_retries_only_incomplete(self, pool_host):
        plan = FaultPlan(worker_death_index=1)
        with faults.injected_faults(plan):
            results = parallel_map(_square, [0, 1, 2, 3], jobs=2)
        assert results == [0, 1, 4, 9]
        report = take_fallback_report()
        assert report is not None
        assert report.reason == "broken-pool"
        # Every task is accounted for exactly once: results the pool
        # delivered are kept, the rest re-ran serially.
        assert report.completed + report.retried == 4
        assert report.retried >= 1

    def test_on_fallback_callback_invoked(self, pool_host):
        seen = []
        with faults.injected_faults(FaultPlan(worker_death_index=0)):
            parallel_map(
                _square, [1, 2, 3], jobs=2, on_fallback=seen.append
            )
        assert len(seen) == 1
        assert seen[0].reason == "broken-pool"
        assert seen[0].as_dict()["retried"] == seen[0].retried

    def test_clean_run_leaves_no_report(self, pool_host):
        assert parallel_map(_square, [1, 2, 3], jobs=2) == [1, 4, 9]
        assert take_fallback_report() is None

    def test_take_report_pops(self, pool_host):
        parallel_map(lambda x: x, [1, 2], jobs=2)
        assert take_fallback_report() is not None
        assert take_fallback_report() is None


def _slow(x):
    # Only ever called under the hang drills' generous watchdogs.
    return x + 100


class TestWatchdog:
    def test_hung_worker_reaped_and_rescheduled(self, pool_host):
        plan = FaultPlan(hang_task_index=1, hang_seconds=30.0)
        with faults.injected_faults(plan):
            results = parallel_map(
                _square, [0, 1, 2, 3], jobs=2, task_timeout_s=1.0
            )
        assert results == [0, 1, 4, 9]
        report = take_fallback_report()
        assert report is not None
        assert report.reason == "hung-worker"
        assert "killed workers" in report.detail
        assert report.completed + report.retried == 4
        assert report.retried >= 1

    def test_healthy_pool_never_trips_watchdog(self, pool_host):
        # The heartbeat window restarts at every completion: many tasks
        # under a short-but-sufficient watchdog run clean.
        results = parallel_map(
            _square, list(range(8)), jobs=2, task_timeout_s=30.0
        )
        assert results == [x * x for x in range(8)]
        assert take_fallback_report() is None

    def test_watchdog_defaults_from_armed_budget(self, pool_host):
        from repro import supervise
        from repro.supervise import Budget

        plan = FaultPlan(hang_task_index=0, hang_seconds=30.0)
        supervise.set_budget(Budget(experiment_timeout_s=1.0).arm())
        try:
            with faults.injected_faults(plan):
                results = parallel_map(_square, [1, 2, 3], jobs=2)
        finally:
            supervise.reset()
        assert results == [1, 4, 9]
        assert take_fallback_report().reason == "hung-worker"

    def test_no_budget_means_no_watchdog(self, pool_host):
        # Unbudgeted runs must not invent a timeout; a clean pool just
        # completes (we cannot wait forever to prove the negative, so
        # assert the resolved default is None instead).
        from repro import supervise

        assert supervise.default_watchdog_s() is None


class TestCircuitBreaker:
    def test_open_breaker_short_circuits_to_serial(self, pool_host):
        from repro.supervise import backoff

        brk = backoff.breaker("process-pool")
        for _ in range(brk.threshold):
            brk.record_failure("drill")
        assert brk.open
        results = parallel_map(_square, [1, 2, 3], jobs=2)
        assert results == [1, 4, 9]
        report = take_fallback_report()
        assert report.reason == "circuit-open"
        assert report.retried == 3 and report.completed == 0

    def test_pool_failures_count_toward_breaker(self, pool_host):
        from repro.supervise import backoff

        with faults.injected_faults(FaultPlan(worker_death_index=0)):
            parallel_map(_square, [1, 2, 3], jobs=2)
        assert backoff.breaker("process-pool").total_trips == 1

    def test_clean_run_resets_consecutive_failures(self, pool_host):
        from repro.supervise import backoff

        brk = backoff.breaker("process-pool")
        brk.record_failure("one")
        parallel_map(_square, [1, 2, 3], jobs=2)
        assert brk.failures == 0
        assert not brk.open


class TestOnResult:
    def test_serial_path_reports_in_order(self):
        seen = []
        parallel_map(
            _square, [3, 1, 2], jobs=1,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert seen == [(0, 9), (1, 1), (2, 4)]

    def test_pool_path_reports_every_task_once(self, pool_host):
        seen = []
        results = parallel_map(
            _square, [0, 1, 2, 3], jobs=2,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert sorted(seen) == [(i, i * i) for i in range(4)]
        assert results == [0, 1, 4, 9]

    def test_fallback_path_still_reports_every_task(self, pool_host):
        seen = []
        with faults.injected_faults(FaultPlan(worker_death_index=1)):
            parallel_map(
                _square, [0, 1, 2, 3], jobs=2,
                on_result=lambda i, r: seen.append(i),
            )
        assert sorted(seen) == [0, 1, 2, 3]
        assert len(seen) == 4  # exactly once each, kept + retried
