"""``lat_mem_rd``: dependent-load latency versus footprint.

Chases a stride-permuted pointer chain through the cache hierarchy.  Two
modes share the same chain construction:

* ``mode="exact"`` (default) — evaluates each level with the exact
  closed-form LRU miss rate for cyclic chains
  (:func:`repro.mem.cache.cyclic_chain_miss_rate`), using the *full*
  chain, so the 64 MiB points genuinely overflow the L2;
* ``mode="structural"`` — replays a bounded sample of the chain through
  the access-by-access :class:`~repro.mem.cache.SetAssocCache`
  simulators; used by the test suite to cross-validate the closed form
  at reduced sizes.

Latency plateaus fall out of genuine hit/miss behaviour and cross-check
the machine parameters against the paper's measured
1.43 ns / ~9.6 ns / ~137 ns ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.machine.params import MachineParams
from repro.machine.registry import default_params
from repro.mem.cache import SetAssocCache, cyclic_chain_miss_rate
from repro.trace.patterns import PointerChasePattern


@dataclass(frozen=True)
class LatencyPoint:
    """Average load-to-use latency at one footprint."""

    footprint_bytes: int
    latency_ns: float
    l1_miss_rate: float
    l2_miss_rate: float


def _chain_lines(fp: int, stride: int, rng: np.random.Generator) -> np.ndarray:
    """Distinct byte addresses of the chain elements across a footprint."""
    n_slots = max(fp // stride, 1)
    return np.arange(n_slots, dtype=np.int64) * stride


def lat_mem_rd(
    footprints: Optional[Sequence[int]] = None,
    params: Optional[MachineParams] = None,
    stride: int = 128,
    mode: str = "exact",
    samples: int = 8000,
    seed: int = 12345,
    vectorized: Optional[bool] = None,
) -> List[LatencyPoint]:
    """Measure average dependent-load latency across footprints.

    Args:
        footprints: byte sizes to probe (default: powers of two from 1 KiB
            to 64 MiB).
        params: machine parameters (default Paxville).
        stride: chain stride in bytes (LMbench's default defeats
            prefetching and spatial reuse).
        mode: ``"exact"`` (closed-form cyclic-LRU, full chain) or
            ``"structural"`` (replay a sample through the set-associative
            simulators).
        samples: chain steps replayed in structural mode.
        seed: RNG seed for the chain permutation (structural mode).
        vectorized: force the batch (True) or scalar (False) replay in
            structural mode; None defers to the global flag.

    Returns:
        One :class:`LatencyPoint` per footprint, ascending.
    """
    params = params if params is not None else default_params()
    if footprints is None:
        footprints = [1 << k for k in range(10, 27)]
    if mode not in ("exact", "structural"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = np.random.default_rng(seed)
    cycle_ns = params.core.cycle_ns

    out: List[LatencyPoint] = []
    for fp in sorted(footprints):
        if mode == "exact":
            lines = _chain_lines(int(fp), stride, rng)
            l1_rate = cyclic_chain_miss_rate(params.l1d, lines)
            l2_rate_global = cyclic_chain_miss_rate(params.l2, lines)
            # Inclusion: a chain line missing L1 but present in L2 pays
            # the L2 latency; missing both pays DRAM.
            l2_local = l2_rate_global / l1_rate if l1_rate > 0 else 0.0
        else:
            pattern = PointerChasePattern(
                footprint_bytes=float(fp), stride_bytes=stride
            )
            addrs = pattern.gen_addresses(samples, rng)
            l1 = SetAssocCache(params.l1d)
            l2 = SetAssocCache(params.l2)
            # Warm-up pass primes both levels, then the measured pass;
            # the L2 sees exactly the subsequence of L1 misses.
            for addr_pass in (addrs, addrs):
                l1.stats = type(l1.stats)()
                l2.stats = type(l2.stats)()
                miss1 = l1.run_misses(addr_pass, vectorized=vectorized)
                l2.run_misses(addr_pass[miss1], vectorized=vectorized)
            l1_rate = l1.stats.miss_rate()
            l2_local = l2.stats.miss_rate()

        lat = (
            (1.0 - l1_rate) * params.l1d.latency_cycles * cycle_ns
            + l1_rate * (1.0 - l2_local) * params.l2.latency_cycles * cycle_ns
            + l1_rate * l2_local * params.memory_latency_ns
        )
        out.append(
            LatencyPoint(
                footprint_bytes=int(fp),
                latency_ns=lat,
                l1_miss_rate=l1_rate,
                l2_miss_rate=l2_local,
            )
        )
    return out


def latency_plateaus(points: Sequence[LatencyPoint]) -> dict:
    """Extract the L1 / L2 / memory plateaus from a latency sweep.

    Uses representative footprints: well inside L1 (<= 8 KiB), between L1
    and L2 (64-512 KiB), and far beyond L2 (>= 16 MiB).
    """
    def pick(lo: int, hi: int) -> float:
        vals = [p.latency_ns for p in points if lo <= p.footprint_bytes <= hi]
        if not vals:
            raise ValueError(f"no probe points between {lo} and {hi} bytes")
        return sum(vals) / len(vals)

    return {
        "l1_ns": pick(1 << 10, 1 << 13),
        "l2_ns": pick(1 << 16, 1 << 19),
        "memory_ns": pick(1 << 24, 1 << 26),
    }
