"""The HTTP/JSON front end: stdlib-only, threaded, signal-drained.

Routes (see ``docs/SERVING.md`` for the full API reference):

* ``POST /jobs``            — submit; 202 with the job record
  (201-equivalent; already-terminal cache hits come back the same way)
* ``GET  /jobs/<id>``       — status with supervision provenance
* ``GET  /jobs/<id>/result``— the result payload (409 until terminal)
* ``DELETE /jobs/<id>``     — cooperative cancel (409 once terminal)
* ``GET  /healthz``         — liveness
* ``GET  /stats``           — queue depth, in-flight, cache/dedup
  counters, latency histogram + percentiles

Built on :class:`http.server.ThreadingHTTPServer` — no new runtime
dependencies; one OS thread per connection, with the scheduler's own
worker pool doing the actual simulation work behind the queue.

:func:`serve_forever` is the CLI entry: it installs SIGINT/SIGTERM
handlers that stop the accept loop, drains the scheduler (in-flight
jobs finish inside the grace window; stragglers are cooperatively
cancelled), journals the shutdown, and returns the exit code — 0 for a
clean drain, 4 when jobs had to be cancelled (the same cancelled-run
code ``run-all`` uses).
"""

from __future__ import annotations

import json
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.serve import store as jobstore
from repro.serve.schema import JobSpecError
from repro.serve.scheduler import Scheduler, SchedulerClosed

__all__ = ["ServeApp", "serve_forever"]

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)$")
_RESULT_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/result$")

#: Refuse absurd request bodies before reading them.
_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """One request; the scheduler hangs off the server object."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise JobSpecError(
                f"request body too large ({length} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobSpecError("empty request body; expected a JSON job")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise JobSpecError(f"invalid JSON body: {exc}") from None

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802  (stdlib naming)
        try:
            self._route_get()
        except Exception as exc:  # pragma: no cover - handler guard
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route_get(self) -> None:
        if self.path == "/healthz":
            stats = self.scheduler.stats()
            self._send(200, {
                "status": "ok",
                "accepting": stats["accepting"],
                "workers": stats["workers"],
            })
            return
        if self.path == "/stats":
            self._send(200, self.scheduler.stats())
            return
        match = _RESULT_PATH.match(self.path)
        if match:
            self._get_result(match.group(1))
            return
        match = _JOB_PATH.match(self.path)
        if match:
            job = self.scheduler.get(match.group(1))
            if job is None:
                self._send(404, {"error": f"no such job {match.group(1)!r}"})
            else:
                self._send(200, job.describe())
            return
        self._send(404, {"error": f"no such route {self.path!r}"})

    def _get_result(self, job_id: str) -> None:
        job = self.scheduler.get(job_id)
        if job is None:
            self._send(404, {"error": f"no such job {job_id!r}"})
            return
        if not job.terminal:
            self._send(409, {
                "error": f"job {job_id} is {job.state}; result not ready",
                "state": job.state,
            })
            return
        payload: Dict[str, Any] = {"id": job.id, "state": job.state}
        if job.state == jobstore.DONE:
            payload["result"] = self.scheduler.result(job_id)
        elif job.state == jobstore.FAILED:
            payload["error"] = job.error
        else:
            payload["reason"] = job.reason
        self._send(200, payload)

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/jobs":
            self._send(404, {"error": f"no such route {self.path!r}"})
            return
        try:
            payload = self._read_json()
            job = self.scheduler.submit(payload)
        except JobSpecError as exc:
            self._send(400, {"error": str(exc)})
        except SchedulerClosed as exc:
            self._send(503, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - handler guard
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send(202, job.describe())

    # ------------------------------------------------------------------
    def do_DELETE(self) -> None:  # noqa: N802
        match = _JOB_PATH.match(self.path)
        if not match:
            self._send(404, {"error": f"no such route {self.path!r}"})
            return
        try:
            job = self.scheduler.cancel(match.group(1))
        except ValueError as exc:
            self._send(409, {"error": str(exc)})
            return
        if job is None:
            self._send(404, {"error": f"no such job {match.group(1)!r}"})
        else:
            self._send(200, job.describe())


class _Server(ThreadingHTTPServer):
    # The stdlib default backlog (5) drops SYNs under concurrent-client
    # load — every client connection is fresh (urllib does not pool),
    # so a 100-client burst overflows it and surfaces as connection
    # resets plus ~1 s retransmit spikes in the latency tail.
    request_queue_size = 128


class ServeApp:
    """The daemon: an HTTP server bound to a scheduler.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` —
    the test fixtures and the load harness rely on this).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.scheduler = scheduler
        self.httpd = _Server((host, port), _Handler)
        self.httpd.scheduler = scheduler  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "ServeApp":
        """Serve in a background thread (tests, embedders)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        return self

    def close(self, drain_timeout_s: Optional[float] = 5.0):
        """Stop accepting, drain the scheduler, release the socket."""
        self.httpd.shutdown()
        report = self.scheduler.shutdown(drain_timeout_s)
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return report


def serve_forever(
    scheduler: Scheduler,
    host: str = "127.0.0.1",
    port: int = 0,
    drain_timeout_s: float = 10.0,
    announce=print,
    state_dir: Optional[Path] = None,
) -> int:
    """Run the daemon until SIGINT/SIGTERM; return the exit code.

    Exit contract (mirrors ``run-all``): 0 — clean drain, every
    in-flight job completed; 4 — the drain had to cancel jobs (they are
    journaled as cancelled and, with a ``state_dir``, resumable).
    """
    app = ServeApp(scheduler, host=host, port=port)
    stop = threading.Event()
    received: Dict[str, str] = {}

    def _handler(signum: int, frame: Any) -> None:
        received["signal"] = signal.Signals(signum).name
        stop.set()

    previous: Dict[int, Any] = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _handler)
    try:
        app.start()
        announce(f"serving on {app.url} "
                 f"(workers={len(scheduler._workers)}, "
                 f"state={state_dir or '-'})", flush=True)
        stop.wait()
        announce(
            f"received {received.get('signal', 'stop')}: draining "
            f"(grace {drain_timeout_s}s)", flush=True,
        )
        report = app.close(drain_timeout_s)
        announce(
            f"drained: {report.completed} job(s) completed, "
            f"{report.cancelled} cancelled", flush=True,
        )
        return 0 if report.clean else 4
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
