"""Integration tests for the simulation engine."""

import pytest

from repro.counters.events import Event
from repro.machine.configurations import get_config
from repro.npb.suite import build_workload
from repro.openmp.env import OMPEnvironment, ScheduleKind
from repro.osmodel.scheduler import make_scheduler
from repro.sim.engine import Engine


@pytest.fixture(scope="module")
def cg():
    return build_workload("CG", "B")


@pytest.fixture(scope="module")
def ep():
    return build_workload("EP", "B")


@pytest.fixture(scope="module")
def ft():
    return build_workload("FT", "B")


class TestSerialRun:
    def test_runtime_positive(self, cg):
        r = Engine(get_config("serial")).run_single(cg)
        assert r.runtime_seconds > 0

    def test_counter_consistency(self, cg):
        r = Engine(get_config("serial")).run_single(cg)
        cs = r.collector.total()
        assert cs[Event.INSTR_RETIRED] == pytest.approx(
            cg.total_instructions, rel=1e-6
        )
        assert cs[Event.CYCLES] > cs[Event.INSTR_RETIRED]  # CPI > 1
        assert cs[Event.STALL_CYCLES] < cs[Event.CYCLES]
        assert cs[Event.L1D_MISS] <= cs[Event.L1D_ACCESS]
        assert cs[Event.L2_MISS] <= cs[Event.L2_ACCESS]

    def test_determinism(self, cg):
        r1 = Engine(get_config("serial")).run_single(cg)
        r2 = Engine(get_config("serial")).run_single(cg)
        assert r1.runtime_seconds == r2.runtime_seconds

    def test_phase_log_records_phases(self, cg):
        r = Engine(get_config("serial")).run_single(cg)
        names = [p.phase_name for p in r.phase_log]
        assert names == ["makea", "spmv", "dot_products", "axpy_updates"]

    def test_serial_phase_uses_one_context(self, cg):
        r = Engine(get_config("ht_off_4_2")).run_single(cg)
        # makea is serial: only one context should have executed it...
        # overall counters still attribute everything to program 0.
        assert r.program(0).counters[Event.INSTR_RETIRED] == pytest.approx(
            cg.total_instructions, rel=1e-6
        )


class TestScaling:
    def test_ep_scales_with_cores(self, ep):
        serial = Engine(get_config("serial")).run_single(ep)
        cmp2 = Engine(get_config("ht_off_2_1")).run_single(ep)
        smp4 = Engine(get_config("ht_off_4_2")).run_single(ep)
        s2 = serial.runtime_seconds / cmp2.runtime_seconds
        s4 = serial.runtime_seconds / smp4.runtime_seconds
        assert s2 == pytest.approx(2.0, rel=0.05)
        assert s4 == pytest.approx(4.0, rel=0.05)

    def test_memory_bound_saturates(self, cg):
        serial = Engine(get_config("serial")).run_single(cg)
        smp4 = Engine(get_config("ht_off_4_2")).run_single(cg)
        s4 = serial.runtime_seconds / smp4.runtime_seconds
        assert 1.5 < s4 < 3.2  # bus-limited well below 4x

    def test_explicit_thread_override(self, ep):
        eng = Engine(get_config("ht_off_4_2"))
        r2 = eng.run_single(ep, n_threads=2)
        r4 = eng.run_single(ep, n_threads=4)
        assert r2.runtime_seconds > r4.runtime_seconds

    def test_omp_environment_thread_override(self, ep):
        eng = Engine(
            get_config("ht_off_4_2"), omp=OMPEnvironment(num_threads=2)
        )
        r = eng.run_single(ep)
        # Two threads on four cores: half the ideal speedup.
        serial = Engine(get_config("serial")).run_single(ep)
        assert serial.runtime_seconds / r.runtime_seconds == pytest.approx(
            2.0, rel=0.05
        )


class TestHTEffects:
    def test_ht_sibling_raises_cpi(self, ft):
        solo = Engine(get_config("ht_off_2_1")).run_single(ft)
        paired = Engine(get_config("ht_on_4_1")).run_single(ft)
        assert paired.metrics(0).cpi > solo.metrics(0).cpi

    def test_ht_on_stalls_exceed_ht_off(self, cg):
        off = Engine(get_config("ht_off_4_2")).run_single(cg)
        on = Engine(get_config("ht_on_8_2")).run_single(cg)
        assert on.metrics(0).stall_fraction > off.metrics(0).stall_fraction


class TestMultiprogram:
    def test_pair_runtimes_and_counters(self, cg, ft):
        r = Engine(get_config("ht_off_4_2")).run_pair(cg, ft)
        assert len(r.programs) == 2
        for prog, wl in zip(r.programs, (cg, ft)):
            assert prog.runtime_seconds > 0
            assert prog.counters[Event.INSTR_RETIRED] == pytest.approx(
                wl.total_instructions, rel=1e-6
            )

    def test_threads_split_evenly(self, cg, ft):
        r = Engine(get_config("ht_off_4_2")).run_pair(cg, ft)
        assert all(p.spec.n_threads == 2 for p in r.programs)

    def test_corun_slower_than_solo(self, cg, ft):
        eng = Engine(get_config("ht_off_4_2"))
        solo = eng.run_single(cg, n_threads=2)
        pair = Engine(get_config("ht_off_4_2")).run_pair(cg, ft)
        assert pair.program(0).runtime_seconds > solo.runtime_seconds * 0.99

    def test_runtime_is_last_finisher(self, cg, ft):
        r = Engine(get_config("ht_off_4_2")).run_pair(cg, ft)
        assert r.runtime_seconds == max(
            p.runtime_seconds for p in r.programs
        )

    def test_homogeneous_pair_symmetric(self, cg):
        r = Engine(get_config("ht_off_4_2")).run_pair(cg, cg)
        a, b = r.programs
        assert a.runtime_seconds == pytest.approx(
            b.runtime_seconds, rel=0.02
        )

    def test_empty_program_list_rejected(self):
        with pytest.raises(ValueError):
            Engine(get_config("serial")).run([])


class TestSchedulerEffects:
    def test_gang_scheduler_changes_outcome(self, cg, ft):
        default = Engine(get_config("ht_on_8_2")).run_pair(cg, ft)
        gang = Engine(
            get_config("ht_on_8_2"), scheduler=make_scheduler("gang")
        ).run_pair(cg, ft)
        assert (
            gang.program(0).runtime_seconds
            != default.program(0).runtime_seconds
        )

    def test_guided_schedule_pays_off_for_imbalanced_loops(self):
        """LU's wavefront imbalance makes self-scheduling worthwhile
        despite the affinity loss; guided (large chunks) wins."""
        lu = build_workload("LU", "B")
        static = Engine(get_config("ht_off_4_2")).run_single(lu)
        guided = Engine(
            get_config("ht_off_4_2"),
            omp=OMPEnvironment(schedule=ScheduleKind.GUIDED),
        ).run_single(lu)
        assert guided.runtime_seconds < static.runtime_seconds

    def test_dynamic_schedule_hurts_regular_loops(self):
        """SP is perfectly balanced: dynamic's chunk migration only
        loses cache affinity."""
        sp = build_workload("SP", "B")
        static = Engine(get_config("ht_off_4_2")).run_single(sp)
        dynamic = Engine(
            get_config("ht_off_4_2"),
            omp=OMPEnvironment(schedule=ScheduleKind.DYNAMIC),
        ).run_single(sp)
        assert dynamic.runtime_seconds > static.runtime_seconds
