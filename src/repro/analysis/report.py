"""ASCII report formatting for experiment drivers."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.analysis.stats import BoxStats


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "%.3f",
) -> str:
    """Render a simple aligned ASCII table."""
    def fmt(v: object) -> str:
        if isinstance(v, float):
            return float_fmt % v
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_metric_grid(
    metric_name: str,
    grid: Mapping[str, Mapping[str, float]],
    config_order: Sequence[str],
    float_fmt: str = "%.3f",
) -> str:
    """Render one Figure-2-style panel: benchmarks x configurations."""
    headers = ["benchmark"] + list(config_order)
    rows = []
    for bench in sorted(grid):
        row: list = [bench]
        for c in config_order:
            v = grid[bench].get(c)
            row.append(float("nan") if v is None else v)
        rows.append(row)
    return format_table(headers, rows, title=f"== {metric_name} ==",
                        float_fmt=float_fmt)


def format_box_plot(
    stats_by_config: Mapping[str, BoxStats],
    config_order: Sequence[str],
    width: int = 52,
    title: Optional[str] = None,
) -> str:
    """Render Figure-5-style box-and-whisker rows in ASCII.

    Each row shows ``min |--[ Q1 | median | Q3 ]--| max`` scaled to a
    common axis.
    """
    stats = [stats_by_config[c] for c in config_order if c in stats_by_config]
    if not stats:
        raise ValueError("nothing to plot")
    lo = min(s.minimum for s in stats)
    hi = max(s.maximum for s in stats)
    span = (hi - lo) or 1.0

    def col(x: float) -> int:
        return int(round((x - lo) / span * (width - 1)))

    lines = []
    if title:
        lines.append(title)
    lines.append(f"axis: {lo:.2f} .. {hi:.2f} (speedup over serial)")
    for name in config_order:
        if name not in stats_by_config:
            continue
        s = stats_by_config[name]
        row = [" "] * width
        for x in range(col(s.minimum), col(s.maximum) + 1):
            row[x] = "-"
        for x in range(col(s.q1), col(s.q3) + 1):
            row[x] = "="
        row[col(s.median)] = "#"
        row[col(s.minimum)] = "|"
        row[col(s.maximum)] = "|"
        lines.append(
            "%-11s %s  med=%.2f iqr=[%.2f, %.2f]"
            % (name, "".join(row), s.median, s.q1, s.q3)
        )
    return "\n".join(lines)
