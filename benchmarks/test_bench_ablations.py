"""Benchmark: regenerate the extension ablations (DESIGN.md §7)."""

from repro.experiments import ablations


def test_bench_scheduler_comparison(benchmark):
    comp = benchmark.pedantic(
        lambda: ablations.scheduler_comparison(
            pairs=[("CG", "FT"), ("FT", "FT"), ("MG", "SP")]
        ),
        rounds=2,
        iterations=1,
    )
    print()
    print(ablations.report_scheduler(comp))
    assert set(comp.results) == {"CG/FT", "FT/FT", "MG/SP"}


def test_bench_prefetcher_ablation(benchmark):
    result = benchmark.pedantic(
        ablations.prefetcher_ablation, rounds=2, iterations=1
    )
    print()
    print(ablations.report_ablation(result, "Prefetcher ablation"))
    for bench in result.results:
        assert (
            result.results[bench]["prefetch_on"]
            >= result.results[bench]["prefetch_off"]
        )


def test_bench_bus_bandwidth_sweep(benchmark):
    result = benchmark.pedantic(
        ablations.bus_bandwidth_sweep, rounds=2, iterations=1
    )
    print()
    print(ablations.report_ablation(result, "Bus bandwidth sweep"))
    vals = [result.results["CG"][v] for v in result.variants]
    assert vals == sorted(vals)  # more bandwidth never hurts CG


def test_bench_trace_cache_sweep(benchmark):
    result = benchmark.pedantic(
        ablations.trace_cache_sweep, rounds=2, iterations=1
    )
    print()
    print(ablations.report_ablation(result, "Trace cache sweep"))
    vals = [result.results["MG"][v] for v in result.variants]
    assert vals[-1] > vals[0]  # MG is trace-cache bound
