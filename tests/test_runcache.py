"""Tests for the cross-study content-addressed run cache."""

import pickle

import pytest

from repro.core import runcache
from repro.core.runcache import (
    QUARANTINE_DIR,
    RunCache,
    configure,
    get_cache,
    study_fingerprint,
)
from repro.core.study import Study
from repro.machine.params import paxville_params
from repro.openmp.env import OMPEnvironment
from repro.testing import faults
from repro.testing.faults import FaultPlan


class _Payload:
    """A picklable value class tests can make 'disappear' to simulate a
    class-layout refactor between package versions."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, _Payload) and other.value == self.value


@pytest.fixture(autouse=True)
def fresh_global_cache(monkeypatch):
    """Each test gets a pristine global cache driven by a clean env."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    configure(reset=True)
    yield
    configure(reset=True)


class TestFingerprint:
    def test_stable_across_equal_configurations(self):
        p1, p2 = paxville_params(), paxville_params()
        assert p1 is not p2
        assert study_fingerprint("B", p1, "linux_cfs", None) == \
            study_fingerprint("B", p2, "linux_cfs", None)

    def test_sensitive_to_each_component(self):
        base = study_fingerprint("B", None, "linux_cfs", None)
        assert study_fingerprint("A", None, "linux_cfs", None) != base
        assert study_fingerprint("B", None, "other", None) != base
        assert study_fingerprint(
            "B", None, "linux_cfs", OMPEnvironment(num_threads=4)
        ) != base
        assert study_fingerprint(
            "B", paxville_params(), "linux_cfs", None
        ) != base


class TestRunCache:
    def test_memory_tier_round_trip(self):
        cache = RunCache()
        assert cache.is_miss(cache.get("fp", ("single", "CG")))
        cache.put("fp", ("single", "CG"), {"v": 1})
        assert cache.get("fp", ("single", "CG")) == {"v": 1}
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_cached_none_is_not_a_miss(self):
        cache = RunCache()
        cache.put("fp", ("k",), None)
        assert not cache.is_miss(cache.get("fp", ("k",)))

    def test_disabled_cache_never_stores(self):
        cache = RunCache(enabled=False)
        cache.put("fp", ("k",), 42)
        assert cache.is_miss(cache.get("fp", ("k",)))
        assert len(cache) == 0

    def test_disk_tier_round_trip(self, tmp_path):
        writer = RunCache(disk_dir=tmp_path / "c")
        writer.put("fp", ("k",), [1, 2, 3])
        assert len(list((tmp_path / "c").glob("*.pkl"))) == 1
        reader = RunCache(disk_dir=tmp_path / "c")
        assert reader.get("fp", ("k",)) == [1, 2, 3]
        assert reader.stats.disk_hits == 1

    def test_torn_disk_entry_is_a_miss(self, tmp_path):
        writer = RunCache(disk_dir=tmp_path)
        writer.put("fp", ("k",), "value")
        (path,) = tmp_path.glob("*.pkl")
        path.write_bytes(b"\x80")  # truncated pickle
        reader = RunCache(disk_dir=tmp_path)
        assert reader.is_miss(reader.get("fp", ("k",)))


class TestDiskIntegrity:
    def _one_entry(self, tmp_path, value="value"):
        writer = RunCache(disk_dir=tmp_path)
        writer.put("fp", ("k",), value)
        (path,) = tmp_path.glob("*.pkl")
        return path

    def _read(self, tmp_path):
        reader = RunCache(disk_dir=tmp_path)
        return reader, reader.get("fp", ("k",))

    def assert_quarantined(self, tmp_path, path, reader):
        assert not path.exists()
        assert (tmp_path / QUARANTINE_DIR / path.name).exists()
        assert reader.stats.quarantined == 1
        assert reader.stats.as_dict()["quarantined"] == 1

    def test_corrupt_entry_quarantined_not_served(self, tmp_path):
        path = self._one_entry(tmp_path)
        path.write_bytes(b"\x00garbage that is not a pickle")
        reader, value = self._read(tmp_path)
        assert reader.is_miss(value)
        self.assert_quarantined(tmp_path, path, reader)

    def test_legacy_raw_pickle_entry_quarantined(self, tmp_path):
        """Pre-envelope entries (plain pickled values) are stale by
        definition: quarantined, never deserialized."""
        path = self._one_entry(tmp_path)
        path.write_bytes(pickle.dumps({"v": 1}))
        reader, value = self._read(tmp_path)
        assert reader.is_miss(value)
        self.assert_quarantined(tmp_path, path, reader)

    def test_package_version_mismatch_quarantined(self, tmp_path, monkeypatch):
        path = self._one_entry(tmp_path)
        monkeypatch.setattr(
            runcache, "_package_version", lambda: "999.0.0"
        )
        reader, value = self._read(tmp_path)
        assert reader.is_miss(value)
        self.assert_quarantined(tmp_path, path, reader)

    def test_entry_schema_mismatch_quarantined(self, tmp_path, monkeypatch):
        path = self._one_entry(tmp_path)
        monkeypatch.setattr(runcache, "CACHE_ENTRY_SCHEMA", 999)
        reader, value = self._read(tmp_path)
        assert reader.is_miss(value)
        self.assert_quarantined(tmp_path, path, reader)

    def test_payload_bitrot_fails_checksum(self, tmp_path):
        path = self._one_entry(tmp_path, value="A" * 256)
        raw = bytearray(path.read_bytes())
        # Flip one bit inside the payload region (the long A-run).
        raw[raw.find(b"AAAA") + 2] ^= 0x01
        path.write_bytes(bytes(raw))
        reader, value = self._read(tmp_path)
        assert reader.is_miss(value)
        self.assert_quarantined(tmp_path, path, reader)

    def test_stale_class_layout_regression(self, tmp_path, monkeypatch):
        """Regression: unpickling an entry whose class no longer exists
        raised AttributeError straight through ``get`` — a warm cache
        crashed run-all after any refactor.  Now it quarantines."""
        import tests.test_runcache as this_module

        path = self._one_entry(tmp_path, value=_Payload(7))
        # Same package version, but the class was refactored away.
        monkeypatch.delattr(this_module, "_Payload")
        reader, value = self._read(tmp_path)
        assert reader.is_miss(value)
        self.assert_quarantined(tmp_path, path, reader)

    def test_valid_entry_round_trips_with_zero_quarantine(self, tmp_path):
        self._one_entry(tmp_path, value=_Payload(7))
        reader, value = self._read(tmp_path)
        assert value == _Payload(7)
        assert reader.stats.quarantined == 0
        assert reader.stats.disk_hits == 1

    def test_quarantined_entry_not_retried(self, tmp_path):
        path = self._one_entry(tmp_path)
        path.write_bytes(b"garbage")
        reader = RunCache(disk_dir=tmp_path)
        assert reader.is_miss(reader.get("fp", ("k",)))
        assert reader.is_miss(reader.get("fp", ("k",)))
        assert reader.stats.quarantined == 1  # moved aside exactly once


class TestInjectedCacheFaults:
    @pytest.fixture(autouse=True)
    def no_plan(self):
        faults.deactivate()
        yield
        faults.deactivate()

    def test_read_oserror_degrades_to_miss(self, tmp_path):
        writer = RunCache(disk_dir=tmp_path)
        writer.put("fp", ("k",), 42)
        reader = RunCache(disk_dir=tmp_path)
        with faults.injected_faults(FaultPlan(cache_read_oserror=True)):
            assert reader.is_miss(reader.get("fp", ("k",)))
        # Entry left intact (the failure was IO, not content).
        assert reader.stats.quarantined == 0
        assert reader.get("fp", ("k",)) == 42

    def test_write_oserror_degrades_to_memory_only(self, tmp_path):
        cache = RunCache(disk_dir=tmp_path)
        with faults.injected_faults(FaultPlan(cache_write_oserror=True)):
            cache.put("fp", ("k",), 42)
        assert not list(tmp_path.glob("*.pkl"))
        assert cache.get("fp", ("k",)) == 42  # memory tier still serves

    def test_injected_corruption_is_quarantined(self, tmp_path):
        writer = RunCache(disk_dir=tmp_path)
        writer.put("fp", ("k",), 42)
        reader = RunCache(disk_dir=tmp_path)
        with faults.injected_faults(FaultPlan(corrupt_cache_reads=1)):
            assert reader.is_miss(reader.get("fp", ("k",)))
        assert reader.stats.quarantined == 1
        assert list((tmp_path / QUARANTINE_DIR).iterdir())

    def test_clear(self, tmp_path):
        cache = RunCache(disk_dir=tmp_path)
        cache.put("fp", ("k",), 1)
        cache.clear(memory=True, disk=True)
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.pkl"))


class TestEnvironmentKnobs:
    def test_no_cache_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = configure(reset=True)
        assert not cache.enabled

    def test_cache_dir_env_enables_disk(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "d"))
        cache = configure(reset=True)
        assert cache.disk_dir == tmp_path / "d"


class TestStudyIntegration:
    def test_equal_studies_share_results(self):
        a, b = Study("A"), Study("A")
        assert a is not b
        assert a.fingerprint == b.fingerprint
        r1 = a.run("EP", "ht_off_2_1")
        hits_before = get_cache().stats.hits
        r2 = b.run("EP", "ht_off_2_1")
        assert get_cache().stats.hits == hits_before + 1
        assert r2 == r1

    def test_different_problem_class_does_not_share(self):
        assert Study("A").fingerprint != Study("B").fingerprint

    def test_results_survive_pickling(self):
        """Disk-tier viability: results must round-trip through pickle."""
        r = Study("A").run("EP", "ht_off_2_1")
        assert pickle.loads(pickle.dumps(r)) == r


class TestReadRetryAndDegradation:
    """Transient-read retry, the cache-read breaker, and memory-only
    degradation (the supervision PR's backoff layer in the cache)."""

    def _seeded(self, tmp_path):
        writer = RunCache(disk_dir=tmp_path)
        writer.put("fp", ("k",), "value")
        return RunCache(disk_dir=tmp_path)

    def test_transient_oserror_is_retried_through(self, tmp_path, monkeypatch):
        reader = self._seeded(tmp_path)
        attempts = {"n": 0}
        real = type(tmp_path).read_bytes

        def flaky(self):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise OSError("transient glitch")
            return real(self)

        monkeypatch.setattr(type(tmp_path), "read_bytes", flaky)
        assert reader.get("fp", ("k",)) == "value"
        assert reader.stats.read_retries == 1
        assert reader.stats.disk_hits == 1

    def test_persistent_oserror_counts_breaker_strike(self, tmp_path):
        from repro.supervise import backoff

        reader = self._seeded(tmp_path)
        plan = FaultPlan(cache_read_oserror=True)
        with faults.injected_faults(plan):
            assert reader.is_miss(reader.get("fp", ("k",)))
        assert reader.stats.read_retries >= 1
        assert backoff.breaker("cache-read").total_trips == 1
        # The entry was left in place (the file may be fine).
        assert len(list(tmp_path.glob("*.pkl"))) == 1

    def test_open_breaker_degrades_to_memory_only(self, tmp_path):
        from repro.supervise import backoff

        reader = self._seeded(tmp_path)
        plan = FaultPlan(cache_read_oserror=True)
        with faults.injected_faults(plan):
            for _ in range(backoff.breaker("cache-read").threshold):
                reader.get("fp", ("k",))
        assert reader.memory_only_reason is not None
        assert "cache-read breaker open" in reader.memory_only_reason
        # Degraded: disk is not consulted even for clean reads...
        assert reader.is_miss(reader.get("fp", ("k",)))
        # ...and writes stay in memory (no new disk entries).
        before = len(list(tmp_path.glob("*.pkl")))
        reader.put("fp", ("other",), 42)
        assert len(list(tmp_path.glob("*.pkl"))) == before
        assert reader.get("fp", ("other",)) == 42  # memory tier works

    def test_slow_cache_fault_only_delays(self, tmp_path):
        reader = self._seeded(tmp_path)
        with faults.injected_faults(FaultPlan(slow_cache_ms=1.0)):
            assert reader.get("fp", ("k",)) == "value"
        assert reader.stats.read_retries == 0


class TestQuarantineRetention:
    def _corrupt_entries(self, tmp_path, n):
        """Write n distinct entries, then corrupt them all."""
        writer = RunCache(disk_dir=tmp_path)
        for i in range(n):
            writer.put("fp", ("k", i), i)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"garbage")

    def test_count_cap_evicts_oldest(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runcache, "QUARANTINE_MAX_ENTRIES", 3)
        self._corrupt_entries(tmp_path, 5)
        reader = RunCache(disk_dir=tmp_path)
        for i in range(5):
            reader.get("fp", ("k", i))
        assert reader.stats.quarantined == 5
        qdir = tmp_path / QUARANTINE_DIR
        assert len(list(qdir.iterdir())) == 3
        assert reader.stats.evicted == 2
        assert reader.stats.as_dict()["evicted"] == 2

    def test_age_cap_evicts_expired(self, tmp_path, monkeypatch):
        import os as _os

        self._corrupt_entries(tmp_path, 2)
        reader = RunCache(disk_dir=tmp_path)
        reader.get("fp", ("k", 0))
        qdir = tmp_path / QUARANTINE_DIR
        (old,) = qdir.iterdir()
        ancient = 1_000_000.0  # epoch seconds, far past any age bound
        _os.utime(old, (ancient, ancient))
        reader.get("fp", ("k", 1))  # next quarantine triggers eviction
        remaining = list(qdir.iterdir())
        assert len(remaining) == 1
        assert remaining[0].name != old.name
        assert reader.stats.evicted == 1

    def test_stats_snapshot_tracks_new_fields(self, tmp_path):
        reader = RunCache(disk_dir=tmp_path)
        before = reader.stats.snapshot()
        reader.stats.read_retries += 2
        reader.stats.evicted += 1
        delta = reader.stats.since(before)
        assert delta.read_retries == 2
        assert delta.evicted == 1
        assert set(delta.as_dict()) >= {"read_retries", "evicted"}
