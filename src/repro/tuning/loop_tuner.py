"""Self-tuning loop scheduler (Zhang & Voss, IPDPS'05).

Hyper-Threaded SMPs change the trade-off between static and
self-scheduled loops: static partitions expose intrinsic imbalance and
SMT-induced speed asymmetry, while dynamic/guided pay per-chunk dispatch
overhead.  The empirical answer is workload- and configuration-specific,
so the tuner *measures*: it runs trial iterations of the target workload
under each schedule on the simulated configuration and commits to the
fastest — exactly what the runtime-empirical selector of the paper's
reference does with real trial timesteps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.machine.configurations import get_config
from repro.machine.params import MachineParams
from repro.openmp.env import OMPEnvironment, ScheduleKind
from repro.sim.engine import Engine
from repro.trace.phase import Workload

#: Fraction of the workload used for each trial run.
TRIAL_FRACTION = 0.02


@dataclass
class LoopTuneResult:
    """Outcome of a schedule-tuning session."""

    workload: str
    config: str
    chosen: ScheduleKind
    trial_seconds: Dict[ScheduleKind, float] = field(default_factory=dict)

    @property
    def gain_over_static(self) -> float:
        """Fractional runtime saved versus always-static."""
        static = self.trial_seconds[ScheduleKind.STATIC]
        best = self.trial_seconds[self.chosen]
        return 1.0 - best / static


def tune_loop_schedule(
    workload: Workload,
    config_name: str,
    params: Optional[MachineParams] = None,
    trial_fraction: float = TRIAL_FRACTION,
) -> LoopTuneResult:
    """Trial every schedule kind and commit to the fastest.

    Args:
        workload: the benchmark to tune.
        config_name: machine configuration to tune on.
        params: machine-parameter overrides.
        trial_fraction: fraction of the full workload each trial runs
            (trials are cheap slices, as in the runtime selector).

    Returns:
        The chosen schedule and the trial timings.
    """
    if not 0 < trial_fraction <= 1:
        raise ValueError("trial_fraction must be in (0, 1]")
    config = get_config(config_name)
    trial = workload.scaled(trial_fraction)
    timings: Dict[ScheduleKind, float] = {}
    for kind in ScheduleKind:
        engine = Engine(
            config, params=params, omp=OMPEnvironment(schedule=kind)
        )
        timings[kind] = engine.run_single(trial).runtime_seconds
    chosen = min(timings, key=timings.get)
    return LoopTuneResult(
        workload=workload.name,
        config=config_name,
        chosen=chosen,
        trial_seconds=timings,
    )
