"""Repeated-trial methodology: run-to-run variance.

The paper runs every benchmark "through a series of ten independent
trials, with minimal variance between tests (<~1-5%)".  Real variance
comes from OS noise — timer interrupts, daemon wakeups, page-placement
luck, scheduler decisions.  This module reproduces the methodology: a
seeded noise model perturbs each phase's wall time, ``run_trials``
executes N independent trials and reports the spread, and the test
suite asserts the paper's variance band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.machine.configurations import MachineConfig, get_config
from repro.machine.params import MachineParams
from repro.npb.suite import build_workload
from repro.sim.engine import Engine

#: Log-normal sigma of per-phase OS noise for a lightly-loaded machine.
BASE_NOISE_SIGMA = 0.006
#: Extra noise per additional visible context (busier machines take more
#: interrupts and make more scheduling decisions).
NOISE_PER_CONTEXT = 0.0012


@dataclass
class TrialStats:
    """Summary of repeated trials of one (workload, config) pair."""

    benchmark: str
    config: str
    runtimes: List[float] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.runtimes)

    @property
    def mean(self) -> float:
        return float(np.mean(self.runtimes))

    @property
    def std(self) -> float:
        return float(np.std(self.runtimes, ddof=1)) if self.n > 1 else 0.0

    @property
    def cv(self) -> float:
        """Coefficient of variation (the paper's 'variance between
        tests')."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def spread(self) -> float:
        """(max - min) / mean."""
        if not self.runtimes:
            return 0.0
        return (max(self.runtimes) - min(self.runtimes)) / self.mean


def noisy_runtime(
    base_runtime: float,
    config: MachineConfig,
    rng: np.random.Generator,
    n_phases: int = 4,
) -> float:
    """One trial's wall time: the deterministic runtime perturbed by
    per-phase log-normal OS noise."""
    sigma = BASE_NOISE_SIGMA + NOISE_PER_CONTEXT * (config.n_contexts - 1)
    # Independent noise per phase partially averages out.
    per_phase = rng.lognormal(mean=0.0, sigma=sigma, size=max(n_phases, 1))
    return base_runtime * float(np.mean(per_phase))


def run_trials(
    benchmark: str,
    config_name: str,
    n_trials: int = 10,
    problem_class: str = "B",
    params: Optional[MachineParams] = None,
    seed: int = 1,
) -> TrialStats:
    """Run N independent trials (the paper's methodology).

    The deterministic engine result is computed once; each trial draws
    an independent OS-noise realization around it.
    """
    if n_trials < 1:
        raise ValueError("need at least one trial")
    config = get_config(config_name)
    workload = build_workload(benchmark, problem_class)
    base = Engine(config, params=params).run_single(workload)
    rng = np.random.default_rng(seed)
    stats = TrialStats(benchmark=benchmark, config=config_name)
    for _ in range(n_trials):
        stats.runtimes.append(
            noisy_runtime(
                base.runtime_seconds, config, rng,
                n_phases=len(workload.phases),
            )
        )
    return stats


def variance_table(
    benchmarks: Sequence[str],
    config_names: Sequence[str],
    n_trials: int = 10,
    problem_class: str = "B",
    seed: int = 1,
) -> List[TrialStats]:
    """The paper's ten-trial variance check across the study grid."""
    out = []
    for b in benchmarks:
        for c in config_names:
            out.append(
                run_trials(b, c, n_trials, problem_class, seed=seed)
            )
            seed += 1
    return out
