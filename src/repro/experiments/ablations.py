"""Extension experiments beyond the paper: scheduler policies and
hardware ablations.

The paper's future work proposes better schedulers for chip-multithreaded
SMPs; ``scheduler_comparison`` quantifies the gang and symbiosis policies
against the default Linux placement on multiprogram pairs.  The hardware
ablations isolate the design factors DESIGN.md calls out: the hardware
prefetcher, the front-side-bus bandwidth, and the trace-cache capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import format_table
from repro.analysis.result import ExperimentResult
from repro.core.context import RunContext, as_context
from repro.core.study import Study
from repro.machine.spec import SpecOverride


@dataclass
class SchedulerComparison:
    """(workload pair, scheduler) -> combined throughput metric."""

    #: pair label -> scheduler name -> sum of the two programs' speedups.
    results: Dict[str, Dict[str, float]] = field(default_factory=dict)
    config: str = "ht_on_8_2"


def scheduler_comparison(
    ctx: Union[RunContext, Study, None] = None,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    schedulers: Sequence[str] = ("linux_default", "gang", "symbiosis"),
    config: str = "ht_on_8_2",
    problem_class: Optional[str] = None,
) -> SchedulerComparison:
    """Compare placement policies on multiprogram pairs.

    The combined metric is the sum of both programs' speedups over their
    serial baselines (system throughput).
    """
    ctx = as_context(ctx)
    pairs = list(pairs or [("CG", "FT"), ("CG", "CG"), ("FT", "FT"),
                           ("MG", "SP")])
    out = SchedulerComparison(config=config)
    for a, b in pairs:
        label = f"{a}/{b}"
        out.results[label] = {}
        for sched in schedulers:
            study = ctx.study(problem_class=problem_class, scheduler=sched)
            sa, sb = study.pair_speedups(a, b, config)
            out.results[label][sched] = sa + sb
    return out


@dataclass
class AblationResult:
    """benchmark -> variant -> speedup at the ablated configuration.

    Speedups are measured against the *stock* serial baseline, so a
    hardware change's absolute effect is visible (normalizing to the
    ablated machine's own serial run would cancel it)."""

    results: Dict[str, Dict[str, float]] = field(default_factory=dict)
    config: str = ""
    variants: List[str] = field(default_factory=list)


def prefetcher_ablation(
    ctx: Union[RunContext, Study, None] = None,
    benchmarks: Sequence[str] = ("MG", "SP", "FT"),
    config: str = "ht_off_2_1",
    problem_class: Optional[str] = None,
) -> AblationResult:
    """Disable the hardware prefetcher and measure the slowdown."""
    ctx = as_context(ctx)
    # Equals the registered ``paxville-no-prefetch`` machine on a stock
    # context; deriving from the context's own spec keeps the ablation
    # meaningful under ``--machine``.
    no_pf = ctx.machine_spec().override(
        SpecOverride.set("bus.prefetch_max_coverage", 0.0),
        name="no-prefetch",
    ).to_params()
    out = AblationResult(config=config, variants=["prefetch_on", "prefetch_off"])
    on = ctx.study(problem_class=problem_class)
    off = ctx.study(problem_class=problem_class, params=no_pf)
    for b in benchmarks:
        base = on.serial_runtime(b)
        out.results[b] = {
            "prefetch_on": base / on.run(b, config).runtime_seconds,
            "prefetch_off": base / off.run(b, config).runtime_seconds,
        }
    return out


def bus_bandwidth_sweep(
    ctx: Union[RunContext, Study, None] = None,
    benchmark: str = "CG",
    config: str = "ht_off_4_2",
    scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    problem_class: Optional[str] = None,
) -> AblationResult:
    """Scale FSB/memory bandwidth and measure the speedup response."""
    ctx = as_context(ctx)
    out = AblationResult(
        config=config, variants=[f"bw_x{s:g}" for s in scales]
    )
    out.results[benchmark] = {}
    base = ctx.machine_spec()
    stock = ctx.study(problem_class=problem_class)
    baseline = stock.serial_runtime(benchmark)
    for s in scales:
        params = base.override(
            SpecOverride.scaled("bus.chip_read_bw", s),
            SpecOverride.scaled("bus.chip_write_bw", s),
            SpecOverride.scaled("bus.system_read_bw", s),
            SpecOverride.scaled("bus.system_write_bw", s),
            name=f"bw_x{s:g}",
        ).to_params()
        study = ctx.study(problem_class=problem_class, params=params)
        out.results[benchmark][f"bw_x{s:g}"] = (
            baseline / study.run(benchmark, config).runtime_seconds
        )
    return out


def trace_cache_sweep(
    ctx: Union[RunContext, Study, None] = None,
    benchmark: str = "MG",
    config: str = "ht_off_4_2",
    sizes_kuops: Sequence[int] = (6, 12, 24, 48),
    problem_class: Optional[str] = None,
) -> AblationResult:
    """Scale the trace-cache capacity and measure MG's response."""
    ctx = as_context(ctx)
    out = AblationResult(
        config=config, variants=[f"tc_{k}k" for k in sizes_kuops]
    )
    out.results[benchmark] = {}
    base = ctx.machine_spec()
    stock = ctx.study(problem_class=problem_class)
    baseline = stock.serial_runtime(benchmark)
    for k in sizes_kuops:
        params = base.override(
            SpecOverride.set("trace_cache.size_bytes", k * 1024),
            name=f"tc_{k}k",
        ).to_params()
        study = ctx.study(problem_class=problem_class, params=params)
        out.results[benchmark][f"tc_{k}k"] = (
            baseline / study.run(benchmark, config).runtime_seconds
        )
    return out


def report_scheduler(comp: SchedulerComparison) -> str:
    scheds = sorted({s for row in comp.results.values() for s in row})
    rows = [
        [pair] + [comp.results[pair][s] for s in scheds]
        for pair in sorted(comp.results)
    ]
    return format_table(
        ["pair"] + list(scheds),
        rows,
        title=f"Scheduler comparison on {comp.config} "
              f"(combined speedup of both programs)",
        float_fmt="%.2f",
    )


def report_ablation(ab: AblationResult, title: str) -> str:
    rows = [
        [bench] + [ab.results[bench][v] for v in ab.variants]
        for bench in sorted(ab.results)
    ]
    return format_table(
        ["benchmark"] + list(ab.variants),
        rows,
        title=f"{title} ({ab.config})",
        float_fmt="%.2f",
    )


@dataclass
class AblationsResult(ExperimentResult):
    """All four ablation studies, bundled for the experiment registry."""

    schedulers: SchedulerComparison
    prefetcher: AblationResult
    bus_bandwidth: AblationResult
    trace_cache: AblationResult


def run(
    ctx: Union[RunContext, Study, None] = None,
    problem_class: Optional[str] = None,
) -> AblationsResult:
    """Run every ablation study (the registry driver entry point)."""
    ctx = as_context(ctx)
    return AblationsResult(
        schedulers=scheduler_comparison(ctx, problem_class=problem_class),
        prefetcher=prefetcher_ablation(ctx, problem_class=problem_class),
        bus_bandwidth=bus_bandwidth_sweep(ctx, problem_class=problem_class),
        trace_cache=trace_cache_sweep(ctx, problem_class=problem_class),
    )


def report(result: AblationsResult) -> str:
    return "\n\n".join(
        [
            report_scheduler(result.schedulers),
            report_ablation(result.prefetcher, "Prefetcher ablation"),
            report_ablation(result.bus_bandwidth, "Bus bandwidth sweep"),
            report_ablation(result.trace_cache, "Trace cache sweep"),
        ]
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
