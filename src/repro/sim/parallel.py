"""Process-pool sweep runner with deterministic ordering.

The sweep experiments (sensitivity perturbations, the Figure-5 pair
cross-product, problem-class scaling) are embarrassingly parallel: every
task builds its own :class:`~repro.core.study.Study` and returns plain
result values.  :func:`parallel_map` fans such tasks out over a process
pool while keeping the *exact* semantics of the serial loop:

* results come back in input order, regardless of completion order;
* any pool-infrastructure failure (unpicklable callables, a broken
  worker, fork limits in constrained sandboxes) falls back to the plain
  serial loop — task-level exceptions still propagate, as they would
  serially;
* ``jobs=1`` (or a single task) short-circuits to the serial loop with
  zero pool overhead.

The default job count is process-wide state (:func:`set_default_jobs`,
initialized from ``REPRO_JOBS``) so a CLI flag can switch every sweep in
a run without threading a parameter through the experiment registry.

Workers cooperate with the run cache of :mod:`repro.core.runcache`: each
worker process has its own memory tier (seeded by fork from the parent),
and when the disk tier is enabled the workers' results persist where the
parent — and later experiments — can read them back.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "get_default_jobs",
    "parallel_map",
    "resolve_jobs",
    "set_default_jobs",
]

JOBS_ENV = "REPRO_JOBS"

_default_jobs: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default parallelism (None = from env/serial)."""
    global _default_jobs
    if jobs is not None and jobs < 1:
        raise ValueError("jobs must be >= 1")
    _default_jobs = jobs


def get_default_jobs() -> int:
    """Current default job count: explicit setting, else ``REPRO_JOBS``,
    else 1 (serial — parallelism is opt-in)."""
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Clamp a requested job count to something sane for this host."""
    n = get_default_jobs() if jobs is None else jobs
    if n < 1:
        raise ValueError("jobs must be >= 1")
    return min(n, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
) -> List[R]:
    """Map ``fn`` over ``items``, possibly across worker processes.

    Args:
        fn: a picklable callable (module-level function); if it is not,
            the pool raises at submission time and the map transparently
            re-runs serially.
        items: tasks, each picklable for the parallel path.
        jobs: worker count; None uses :func:`get_default_jobs`; 1 means
            the plain serial loop.
        initializer: optional per-worker setup hook (e.g. reconfiguring
            the run cache, or pinning nested sweeps to ``jobs=1`` when
            the *caller* is already the fan-out level).  Only invoked on
            the pool path — the serial loop and the fallback run in the
            caller's process, whose global state must stay untouched.
        initargs: arguments for ``initializer``.

    Returns:
        ``[fn(x) for x in items]`` — identical results and ordering on
        both paths.  Exceptions raised *by fn* propagate either way.
    """
    items = list(items)
    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(items)),
            initializer=initializer,
            initargs=initargs,
        ) as ex:
            return list(ex.map(fn, items))
    except (pickle.PicklingError, AttributeError, BrokenProcessPool, OSError):
        # Pool infrastructure failed (unpicklable payload, dead worker,
        # fork refusal); the task semantics don't change, so rerun the
        # plain loop.
        return [fn(x) for x in items]
