"""Unit tests for the chaos soak harness (``tools/soak.py``).

The soak's end-to-end loop (subprocess run-all under randomized faults)
runs in CI as its own chaos-drill job; these tests pin the harness'
deterministic pieces so a refactor of the soak cannot silently change
what the drill asserts.
"""

import random
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import soak  # noqa: E402  (needs the tools/ path above)

from repro.testing import faults  # noqa: E402


SELECTED = ["fig2", "fig3", "table2"]


class TestDrawFault:
    def test_same_seed_draws_identical_plans(self):
        a = [soak.draw_fault(random.Random(7), SELECTED) for _ in range(20)]
        b = [soak.draw_fault(random.Random(7), SELECTED) for _ in range(20)]
        assert a == b

    def test_all_kinds_reachable(self):
        rng = random.Random(0)
        kinds = {soak.draw_fault(rng, SELECTED)[0] for _ in range(300)}
        assert kinds == {
            "none", "fail-experiment", "sigkill-self", "hang",
            "cache-corrupt", "worker-death", "slow-cache",
            "sigint", "sigterm", "sigkill",
        }

    def test_every_faults_token_parses(self):
        # Whatever the soak injects must be a spec run-all accepts —
        # a typo here would make the drill exit 2 and look like a pass
        # of the "terminal state" invariant for the wrong reason.
        rng = random.Random(1)
        for _ in range(300):
            _, opts = soak.draw_fault(rng, SELECTED)
            if opts["faults"]:
                faults.parse_plan(opts["faults"])

    def test_fail_experiment_targets_a_selected_id(self):
        rng = random.Random(2)
        for _ in range(200):
            kind, opts = soak.draw_fault(rng, SELECTED)
            if kind == "fail-experiment":
                plan = faults.parse_plan(opts["faults"])
                assert set(plan.fail_experiments) <= set(SELECTED)

    def test_hang_rides_with_an_experiment_timeout(self):
        rng = random.Random(3)
        for _ in range(200):
            kind, opts = soak.draw_fault(rng, SELECTED)
            if kind == "hang":
                assert "--experiment-timeout" in opts["extra_args"]

    def test_signal_kinds_carry_a_delay(self):
        rng = random.Random(4)
        for _ in range(200):
            kind, opts = soak.draw_fault(rng, SELECTED)
            if kind in ("sigint", "sigterm", "sigkill"):
                assert opts["signal"] is not None
                assert 0.05 <= opts["delay"] <= 0.6
            else:
                assert opts["signal"] is None


class TestEnvAndSpec:
    def test_env_strips_ambient_supervision_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "experiment:fig2")
        monkeypatch.setenv("REPRO_TIMEOUT", "5")
        monkeypatch.setenv("REPRO_EXPERIMENT_TIMEOUT", "5")
        monkeypatch.setenv("REPRO_JOURNAL", "0")
        env = soak._env(None)
        for key in ("REPRO_FAULTS", "REPRO_TIMEOUT",
                    "REPRO_EXPERIMENT_TIMEOUT", "REPRO_JOURNAL"):
            assert key not in env
        assert soak._env("hang:0:30")["REPRO_FAULTS"] == "hang:0:30"

    def test_spec_describes_the_draw(self):
        assert soak._spec("none", {"faults": None, "signal": None,
                                   "delay": 0.0}) == "none"
        desc = soak._spec("hang", {"faults": "hang:1:30", "signal": None,
                                   "delay": 0.0})
        assert desc == "hang faults=hang:1:30"


class TestRowComparison:
    ROW = {
        "status": "ok", "wave": 0, "result": {"speedup": 2.0},
        "wall_time_s": 1.23, "cache": {"hits": 4}, "batch": 3,
    }

    def test_strip_provenance_drops_only_timing_keys(self):
        stripped = soak.strip_provenance(self.ROW)
        assert stripped == {
            "status": "ok", "wave": 0, "result": {"speedup": 2.0},
        }

    def test_rows_match_modulo_provenance(self):
        noisy = dict(self.ROW, wall_time_s=9.9, cache={}, batch=0)
        soak.check_rows_match(
            {"experiments": {"fig2": noisy}},
            {"experiments": {"fig2": self.ROW}},
        )

    def test_diverging_result_fails(self):
        wrong = dict(self.ROW, result={"speedup": 1.0})
        with pytest.raises(soak.SoakFailure, match="diverges"):
            soak.check_rows_match(
                {"experiments": {"fig2": wrong}},
                {"experiments": {"fig2": self.ROW}},
            )

    def test_missing_row_fails(self):
        with pytest.raises(soak.SoakFailure, match="lacks row"):
            soak.check_rows_match(
                {"experiments": {}},
                {"experiments": {"fig2": self.ROW}},
            )
