#!/usr/bin/env python3
"""Semantic diff of freshly-rendered artifacts against the goldens.

``tests/test_engine_equivalence.py`` answers *whether* an artifact still
matches its golden, byte for byte.  This tool answers *what changed and
by how much* when it no longer does: it re-renders each golden artifact
through the experiment registry, aligns the text line by line, and
reports every numeric token that moved — with its section (``== name
==`` headers), row label, old and new values, and relative delta —
instead of a raw textual diff.

Usage::

    PYTHONPATH=src python tools/golden_diff.py              # all goldens
    PYTHONPATH=src python tools/golden_diff.py --only fig2,table2
    PYTHONPATH=src python tools/golden_diff.py --goldens tests/goldens

Exit status: 0 when every artifact matches its golden, 1 on any drift,
2 on usage errors.  To accept deliberate drift, regenerate the goldens
with ``tools/refresh_goldens.py`` (see docs/TESTING.md).
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

#: Artifacts with checked-in goldens (mirrors the equivalence test).
GOLDEN_IDS = ["fig2", "fig3", "table2", "nextgen"]

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_GOLDEN_DIR = _REPO_ROOT / "tests" / "goldens"

_NUMBER = re.compile(r"-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?")
_SECTION = re.compile(r"^==\s*(?P<name>.+?)\s*==$")


@dataclass(frozen=True)
class MetricDiff:
    """One numeric token that differs between golden and fresh text."""

    experiment: str
    section: str
    row: str
    column: int
    line_no: int
    old: float
    new: float

    @property
    def rel_delta(self) -> float:
        if self.old == 0.0:
            return float("inf") if self.new != 0.0 else 0.0
        return (self.new - self.old) / abs(self.old)

    def format(self) -> str:
        where = f"{self.experiment}:{self.line_no}"
        label = self.section or "-"
        rel = self.rel_delta
        rel_text = "new" if rel == float("inf") else f"{rel:+.3%}"
        return (
            f"{where:<14} [{label}] {self.row} #{self.column}: "
            f"{self.old:g} -> {self.new:g} ({rel_text})"
        )


@dataclass
class ArtifactDiff:
    """Comparison outcome for one golden artifact."""

    experiment: str
    identical: bool
    metric_diffs: List[MetricDiff]
    structural_changes: List[str]

    @property
    def clean(self) -> bool:
        return self.identical


def _row_label(line: str) -> str:
    stripped = line.strip()
    if not stripped:
        return "(blank)"
    head = stripped.split()[0]
    return head if not _NUMBER.fullmatch(head) else "(row)"


def diff_text(experiment: str, golden: str, fresh: str) -> ArtifactDiff:
    """Align two renders line by line and collect per-metric diffs.

    Lines are compared positionally; a changed numeric token becomes a
    :class:`MetricDiff`, anything else (wording, added or removed lines)
    a structural change.  Artifacts are line-oriented tables, so
    positional alignment is exact whenever only values drift.
    """
    if golden == fresh:
        return ArtifactDiff(experiment, True, [], [])

    metric_diffs: List[MetricDiff] = []
    structural: List[str] = []
    golden_lines = golden.splitlines()
    fresh_lines = fresh.splitlines()
    if len(golden_lines) != len(fresh_lines):
        structural.append(
            f"line count changed: {len(golden_lines)} -> {len(fresh_lines)}"
        )

    section = ""
    for i, (old_line, new_line) in enumerate(
        zip(golden_lines, fresh_lines), start=1
    ):
        match = _SECTION.match(old_line.strip())
        if match:
            section = match.group("name")
        if old_line == new_line:
            continue
        old_nums = _NUMBER.findall(old_line)
        new_nums = _NUMBER.findall(new_line)
        skeleton_old = _NUMBER.sub("#", old_line)
        skeleton_new = _NUMBER.sub("#", new_line)
        if skeleton_old != skeleton_new or len(old_nums) != len(new_nums):
            structural.append(
                f"line {i}: text changed\n"
                f"  - {old_line.rstrip()}\n  + {new_line.rstrip()}"
            )
            continue
        row = _row_label(old_line)
        for col, (o, n) in enumerate(zip(old_nums, new_nums), start=1):
            if o != n:
                metric_diffs.append(MetricDiff(
                    experiment=experiment,
                    section=section,
                    row=row,
                    column=col,
                    line_no=i,
                    old=float(o),
                    new=float(n),
                ))
    return ArtifactDiff(experiment, False, metric_diffs, structural)


def render(experiment_id: str) -> str:
    """Render one artifact exactly as ``repro run`` prints it."""
    from repro.core.context import RunContext
    from repro.experiments import registry

    entry = registry.get(experiment_id)
    result = entry.run(RunContext())
    return entry.render_text(result) + "\n"


def diff_against_goldens(
    golden_dir: Path,
    only: Optional[List[str]] = None,
) -> Dict[str, ArtifactDiff]:
    """Render and diff each selected artifact against its golden file."""
    ids = only if only else GOLDEN_IDS
    unknown = [i for i in ids if i not in GOLDEN_IDS]
    if unknown:
        raise KeyError(
            f"no golden for {', '.join(unknown)}; "
            f"valid ids: {', '.join(GOLDEN_IDS)}"
        )
    out: Dict[str, ArtifactDiff] = {}
    for experiment_id in ids:
        golden = (golden_dir / f"{experiment_id}.txt").read_text()
        out[experiment_id] = diff_text(
            experiment_id, golden, render(experiment_id)
        )
    return out


def report(diffs: Dict[str, ArtifactDiff]) -> int:
    """Print a human-readable summary; return the number of drifted
    artifacts."""
    drifted = 0
    for experiment_id, diff in diffs.items():
        if diff.clean:
            print(f"{experiment_id}: OK")
            continue
        drifted += 1
        print(f"{experiment_id}: DRIFTED "
              f"({len(diff.metric_diffs)} metric(s), "
              f"{len(diff.structural_changes)} structural change(s))")
        for md in diff.metric_diffs:
            print(f"  {md.format()}")
        for change in diff.structural_changes:
            print(f"  {change}")
    if drifted:
        print(f"\n{drifted} artifact(s) drifted; if deliberate, refresh "
              f"with: PYTHONPATH=src python tools/refresh_goldens.py")
    return drifted


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="semantic per-metric diff against the golden artifacts"
    )
    parser.add_argument(
        "--only", help="comma-separated golden ids (default: all)"
    )
    parser.add_argument(
        "--goldens", type=Path, default=DEFAULT_GOLDEN_DIR,
        help="golden directory (default: tests/goldens)",
    )
    args = parser.parse_args(argv)
    only = args.only.split(",") if args.only else None
    try:
        diffs = diff_against_goldens(args.goldens, only)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return 1 if report(diffs) else 0


if __name__ == "__main__":
    sys.exit(main())
