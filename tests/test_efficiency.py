"""Tests for efficiency/symbiosis analysis."""

import pytest

from repro.analysis.efficiency import (
    corun_degradation_matrix,
    efficiency_table,
    most_efficient_architecture,
)
from repro.core.study import Study
from repro.experiments import efficiency_study


@pytest.fixture(scope="module")
def study():
    return Study("B")


@pytest.fixture(scope="module")
def rows(study):
    return efficiency_table(study)


class TestEfficiencyTable:
    def test_covers_all_cells(self, rows):
        assert len(rows) == 6 * 7

    def test_normalization_arithmetic(self, rows):
        r = next(x for x in rows if x.config == "ht_on_8_2"
                 and x.benchmark == "EP")
        assert r.per_context == pytest.approx(r.speedup / 8)
        assert r.per_core == pytest.approx(r.speedup / 4)
        assert r.per_chip == pytest.approx(r.speedup / 2)

    def test_paper_conclusion_most_efficient_per_chip(self, rows):
        """'The most efficient architecture is a single dual-core
        processor with HT enabled' — per chip (and close per core)."""
        assert most_efficient_architecture(rows, by="per_chip") == "ht_on_4_1"

    def test_unknown_basis(self, rows):
        with pytest.raises(ValueError):
            most_efficient_architecture(rows, by="per_watt")


class TestDegradationMatrix:
    @pytest.fixture(scope="class")
    def matrix(self, study):
        return corun_degradation_matrix(
            study, benchmarks=["CG", "FT", "EP"], config="ht_on_8_2"
        )

    def test_all_cells_present(self, matrix):
        assert len(matrix.cells) == 9

    def test_degradation_at_least_near_one(self, matrix):
        for v in matrix.cells.values():
            assert v > 0.9  # co-running never speeds a program up much

    def test_ep_is_friendly_to_memory_codes(self, matrix):
        """EP barely touches memory: it degrades CG less than another
        CG copy does."""
        assert matrix.cell("CG", "EP") < matrix.cell("CG", "CG")

    def test_friendliest_partner(self, matrix):
        assert matrix.friendliest_partner("CG") == "EP"


class TestEfficiencyStudyDriver:
    def test_report_renders(self, study):
        result = efficiency_study.run(study)
        text = efficiency_study.report(result)
        assert "Resource efficiency" in text
        assert "degradation matrix" in text
        assert "most efficient per chip: ht_on_4_1" in text
