"""Artifact export: CSV/JSON serialization of experiment results.

Every experiment driver returns structured dataclasses; this module
flattens them into rows for archival, plotting, or diffing between
model versions.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from enum import Enum
from typing import Any, Dict, Iterable, Mapping, Sequence


def _jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/enums/tuples for JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Mapping):
        return {_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return value


def _key(k: Any) -> str:
    if isinstance(k, Enum):
        return str(k.value)
    if isinstance(k, tuple):
        return "/".join(str(_key(x)) for x in k)
    return str(k)


def result_to_dict(result: Any) -> Any:
    """Flatten any experiment result into JSON-compatible values.

    This is the single serialization path behind
    :meth:`repro.analysis.result.ExperimentResult.to_dict`, the
    pipeline's ``<id>.json`` artifacts, and ``--format json``.
    """
    return _jsonable(result)


def to_json(result: Any, indent: int = 2) -> str:
    """Serialize any experiment result object to JSON text."""
    return json.dumps(_jsonable(result), indent=indent, sort_keys=True)


def grid_to_csv(
    grid: Mapping[str, Mapping[str, float]],
    config_order: Sequence[str],
    row_label: str = "benchmark",
) -> str:
    """Serialize a Figure-2-style grid (row -> column -> value) to CSV."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow([row_label] + list(config_order))
    for row_key in sorted(grid):
        writer.writerow(
            [row_key]
            + [grid[row_key].get(c, "") for c in config_order]
        )
    return out.getvalue()


def rows_to_csv(rows: Iterable[Any]) -> str:
    """Serialize homogeneous dataclass rows to CSV (fields as header)."""
    rows = list(rows)
    if not rows:
        return ""
    fields = [f.name for f in dataclasses.fields(rows[0])]
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(fields)
    for r in rows:
        writer.writerow([_csv_cell(getattr(r, f)) for f in fields])
    return out.getvalue()


def _csv_cell(v: Any) -> Any:
    if isinstance(v, Enum):
        return v.value
    if isinstance(v, (dict, list, tuple)):
        return json.dumps(_jsonable(v), sort_keys=True)
    return v


def speedup_table_to_csv(table) -> str:
    """Serialize a :class:`~repro.analysis.speedup.SpeedupTable`."""
    grid: Dict[str, Dict[str, float]] = table.values
    return grid_to_csv(grid, table.configs)
