"""Microbenchmarks for the simulation hot paths (pytest-benchmark).

Not part of the default test suite (``testpaths`` excludes this
directory).  Typical usage::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only \
        --benchmark-json=/tmp/bench_new.json
    python tools/bench_compare.py BENCH_baseline.json /tmp/bench_new.json

``BENCH_baseline.json`` at the repository root is the committed
reference; ``tools/bench_compare.py`` exits non-zero when a benchmark
regresses more than its threshold (25 % by default), for use as a CI
gate.  Regenerate the baseline with the first command above (writing to
``BENCH_baseline.json``) whenever a deliberate performance change lands.
"""

import numpy as np
import pytest

from repro.core.runcache import RunCache

# Every benchmark here is a sub-second micro-measurement, so the whole
# module doubles as the CI smoke subset (run with --benchmark-disable).
pytestmark = pytest.mark.smoke
from repro.core.study import Study
from repro.machine.params import CacheParams
from repro.machine.registry import resolve_machine
from repro.mem.cache import SetAssocCache
from repro.npb.suite import build_workload
from repro.sim.structural import SharingScenario, StructuralCoSimulator


@pytest.fixture(scope="module")
def scenario():
    return SharingScenario(
        phase=build_workload("CG", "B").phases[-1], n_threads=4
    )


def test_structural_replay_vectorized(benchmark, scenario):
    sim = StructuralCoSimulator(samples=30000, vectorized=True)
    benchmark(sim.measure, scenario)


def test_structural_replay_scalar(benchmark, scenario):
    sim = StructuralCoSimulator(samples=30000, vectorized=False)
    benchmark.pedantic(sim.measure, args=(scenario,), rounds=3)


def test_cache_batch_run_200k(benchmark):
    params = CacheParams(
        size_bytes=16 * 1024, line_bytes=64, associativity=8,
        latency_cycles=3,
    )
    rng = np.random.default_rng(7)
    addrs = rng.integers(0, 1 << 22, size=200_000, dtype=np.int64)

    def run():
        cache = SetAssocCache(params)
        return cache.run(addrs, vectorized=True)

    benchmark(run)


def test_analytic_run_uncached(benchmark):
    study = Study("B")

    # Calling the engine directly bypasses the run cache, so this
    # measures the analytic model itself.
    def run():
        return study.engine("ht_off_4_2").run_single(study.workload("CG"))

    benchmark(run)


def test_analytic_run_spec_machine(benchmark):
    # Same engine path, but with parameters that travelled through the
    # declarative spec layer (registry lookup -> validate -> to_params).
    # Gates the MachineSpec refactor: it must add no steady-state cost
    # over the hand-constructed params of test_analytic_run_uncached.
    study = Study("B", params=resolve_machine("paxville").to_params())

    def run():
        return study.engine("ht_off_4_2").run_single(study.workload("CG"))

    benchmark(run)


def test_analytic_run_three_level(benchmark):
    # Same engine path again, on a three-level (L1/L2/shared-L3) spec.
    # Gates the N-level LevelRates chain: the extra-levels loop must add
    # only its own level's cost on top of test_analytic_run_spec_machine.
    study = Study(
        "B", params=resolve_machine("broadwell-shared-l3").to_params()
    )

    def run():
        return study.engine("ht_off_4_2").run_single(study.workload("CG"))

    benchmark(run)


def test_spec_resolve_and_materialize(benchmark):
    # Registry lookup + schema validation + params materialization —
    # the per-invocation overhead `--machine <name>` adds to the CLI.
    def run():
        return resolve_machine("paxville").to_params()

    benchmark(run)


def test_run_cache_hit(benchmark):
    cache = RunCache()
    cache.put("fp", ("single", "CG", "ht_off_4_2"), {"payload": 1})
    benchmark(cache.get, "fp", ("single", "CG", "ht_off_4_2"))
