"""Tests for the workload surface of the CLI (``workloads``,
``--workload``, generalized ``speedup``)."""

import json

from repro.cli import main


class TestWorkloadsListing:
    def test_lists_builtins_with_fingerprints(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("CG", "minigmg", "triad", "strided-load"):
            assert name in out
        assert "built-in" in out
        # Every line carries the kv summary.
        assert "kind=" in out and "ws=" in out

    def test_detail_view_has_phase_table(self, capsys):
        assert main(["workloads", "minigmg"]) == 0
        out = capsys.readouterr().out
        assert "memory-bound score" in out
        assert "smooth_l0" in out and "bottom_solve" in out
        assert "stencil" in out  # the access-mix column
        assert "parallel" in out  # the openmp column

    def test_detail_case_insensitive(self, capsys):
        assert main(["workloads", "cg"]) == 0
        assert "CG" in capsys.readouterr().out

    def test_unknown_name_exits_2_with_suggestion(self, capsys):
        assert main(["workloads", "triadd"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "did you mean 'triad'" in err

    def test_problem_class_changes_listing(self, capsys):
        assert main(["workloads", "--problem-class", "S"]) == 0
        small = capsys.readouterr().out
        assert main(["workloads", "--problem-class", "B"]) == 0
        big = capsys.readouterr().out
        assert "class=S" in small and "class=B" in big
        assert small != big

    def test_file_specs_show_provenance(self, capsys, tmp_path, monkeypatch):
        spec_path = tmp_path / "custom.json"
        spec_path.write_text(json.dumps({
            "schema": 1,
            "name": "custom",
            "workload": {
                "problem_class": "B",
                "phases": [{
                    "name": "only",
                    "openmp": "parallel",
                    "instructions": 1e9,
                    "mem_ops_per_instr": 0.4,
                    "access_mix": [{
                        "kind": "streaming",
                        "weight": 1.0,
                        "footprint_bytes": 2 ** 24,
                    }],
                    "code_footprint_uops": 5000.0,
                    "code_footprint_bytes": 12000.0,
                    "branches_per_instr": 0.1,
                    "branch_misp_intrinsic": 0.01,
                    "branch_sites": 40,
                    "ilp": 1.5,
                }],
            },
        }))
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "custom" in out and str(spec_path) in out


class TestWorkloadOption:
    def test_run_fig3_with_workload(self, capsys):
        assert main(["run", "fig3", "--workload", "triad"]) == 0
        out = capsys.readouterr().out
        assert "triad" in out
        assert "CG" not in out  # default matrix replaced, not extended

    def test_run_unknown_workload_exits_2(self, capsys):
        assert main(["run", "fig3", "--workload", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown workload" in err

    def test_run_json_payload_carries_workloads(self, capsys):
        assert main([
            "run", "fig3", "--format", "json",
            "--workload", "strided-load",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "strided-load" in json.dumps(payload)


class TestSpeedupGeneralized:
    def test_registry_workload_speedup(self, capsys):
        assert main(["speedup", "minigmg", "ht_off_2_1"]) == 0
        out = capsys.readouterr().out
        assert "minigmg on ht_off_2_1" in out
        assert "x over serial" in out

    def test_nas_names_still_uppercase(self, capsys):
        assert main(["speedup", "ep", "ht_off_2_1"]) == 0
        assert "EP on ht_off_2_1" in capsys.readouterr().out
