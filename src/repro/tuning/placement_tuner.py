"""Feedback placement tuner (Curtis-Maury et al., QEST'05).

For multiprogram workloads the decisive question on a chip-multithreaded
SMP is *which threads share a core*: same-program siblings share code
(constructive trace cache) while mixed siblings can be symbiotic (one
memory-bound, one compute-bound) or mutually destructive.  The tuner
samples every candidate placement policy over a short trial interval,
scores system throughput (sum of the programs' progress rates), commits
to the winner, and reports the predicted full-run outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.machine.configurations import get_config
from repro.machine.params import MachineParams
from repro.osmodel.process import ProgramSpec
from repro.osmodel.scheduler import make_scheduler
from repro.sim.engine import Engine
from repro.trace.phase import Workload

#: Placement policies the tuner samples.
CANDIDATE_POLICIES = ("linux_default", "gang", "symbiosis")

#: Fraction of the workloads used per trial interval.
TRIAL_FRACTION = 0.02


@dataclass
class PlacementTuneResult:
    """Outcome of a placement-tuning session."""

    workloads: Tuple[str, str]
    config: str
    chosen: str
    #: policy -> combined throughput score (1 / co-run makespan).
    trial_scores: Dict[str, float] = field(default_factory=dict)
    #: policy -> full-run makespan seconds (the committed run measured
    #: for every policy, for evaluation).
    full_makespans: Dict[str, float] = field(default_factory=dict)

    @property
    def gain_over_default(self) -> float:
        """Fractional makespan saved versus the default Linux placement."""
        default = self.full_makespans["linux_default"]
        best = self.full_makespans[self.chosen]
        return 1.0 - best / default

    @property
    def regret(self) -> float:
        """Makespan excess of the chosen policy over the true optimum
        (0 = the trial interval identified the best policy)."""
        best_true = min(self.full_makespans.values())
        return self.full_makespans[self.chosen] / best_true - 1.0


def tune_placement(
    workload_a: Workload,
    workload_b: Workload,
    config_name: str,
    params: Optional[MachineParams] = None,
    policies: Sequence[str] = CANDIDATE_POLICIES,
    trial_fraction: float = TRIAL_FRACTION,
) -> PlacementTuneResult:
    """Sample placement policies on trial intervals; commit to the best.

    Returns the chosen policy plus both trial scores and full-run
    makespans (so callers can compute the tuner's regret).
    """
    if not 0 < trial_fraction <= 1:
        raise ValueError("trial_fraction must be in (0, 1]")
    config = get_config(config_name)
    per_prog = max(config.n_contexts // 2, 1)

    def run_with(policy: str, scale: float) -> float:
        engine = Engine(
            config, params=params, scheduler=make_scheduler(policy)
        )
        specs = [
            ProgramSpec(workload=workload_a.scaled(scale),
                        n_threads=per_prog, program_id=0),
            ProgramSpec(workload=workload_b.scaled(scale),
                        n_threads=per_prog, program_id=1),
        ]
        return engine.run(specs).runtime_seconds

    trial_scores = {
        p: 1.0 / run_with(p, trial_fraction) for p in policies
    }
    chosen = max(trial_scores, key=trial_scores.get)
    full_makespans = {p: run_with(p, 1.0) for p in policies}
    return PlacementTuneResult(
        workloads=(workload_a.name, workload_b.name),
        config=config_name,
        chosen=chosen,
        trial_scores=trial_scores,
        full_makespans=full_makespans,
    )
