"""miniGMG-style geometric multigrid V-cycles.

Models the miniGMG proxy app: V-cycles of a 7-point variable-coefficient
smoother on a 3-D grid, with one phase per multigrid level.  The defining
memory behaviour is the *level-by-level shrinking working set*: each
coarsening halves the grid edge, so the footprint drops 8x per level —
the fine levels stream hundreds of megabytes past every cache while the
coarse levels fit in L2, then L1.  The bottom solver (a BiCGStab on the
coarsest grid) is the other extreme: a cache-resident, barrier-dominated
phase whose cost is synchronization, not bandwidth — exactly the
communication-bound tail the miniGMG thread-count/affinity experiments
probe.

Every level phase carries the full smoother code footprint: one V-cycle
alternates the same unrolled routines across all levels within
milliseconds, so no level's loops stay resident on their own.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Tuple

from repro.npb.common import (
    BYTES_PER_UOP,
    FLOP_TO_UOPS,
    ProblemClass,
    check_class,
)
from repro.trace.patterns import AccessMix, RandomPattern, StencilPattern
from repro.trace.phase import Phase, Workload
from repro.workload.spec import WorkloadSpec

NAME = "minigmg"

#: (fine grid edge, V-cycles)
_DIMS: Dict[ProblemClass, Tuple[int, int]] = {
    ProblemClass.S: (32, 4),
    ProblemClass.W: (64, 6),
    ProblemClass.A: (128, 8),
    ProblemClass.B: (256, 10),
    ProblemClass.C: (512, 10),
}

#: Coarsest explicit level edge; grids below this are the bottom solve.
_BOTTOM_EDGE = 8

#: Flops per grid point per V-cycle at one level (4 smoother sweeps of a
#: 7-point variable-coefficient operator + residual + grid transfer).
_FLOPS_PER_POINT = 60.0
#: BiCGStab iterations per V-cycle on the coarsest grid.
_BOTTOM_ITERS = 48
#: Flops per point per bottom-solve iteration (two SpMVs + dot products).
_BOTTOM_FLOPS_PER_POINT = 30.0
#: Hot code of the whole V-cycle (smooth/residual/restrict/interpolate).
_CODE_UOPS = 9000.0
#: Arrays resident per level: solution, RHS, residual, coefficients.
_ARRAYS = 4.0


def dims(problem_class: ProblemClass) -> Tuple[int, int]:
    """(fine grid edge, V-cycle count)."""
    return check_class(problem_class, _DIMS)


def level_edges(fine_edge: int) -> Tuple[int, ...]:
    """Grid edges of the explicit levels, fine to coarse."""
    edges = []
    edge = fine_edge
    while edge >= _BOTTOM_EDGE:
        edges.append(edge)
        edge //= 2
    return tuple(edges)


def build(
    problem_class: ProblemClass = ProblemClass.B,
    fine_edge: Optional[int] = None,
    vcycles: Optional[int] = None,
) -> Workload:
    """Build the multigrid workload: one smoother phase per level."""
    edge0, cycles0 = dims(problem_class)
    edge = int(fine_edge) if fine_edge is not None else edge0
    cycles = int(vcycles) if vcycles is not None else cycles0
    if edge < 2 * _BOTTOM_EDGE:
        raise ValueError(
            f"fine_edge must be >= {2 * _BOTTOM_EDGE}, got {edge}"
        )

    scalars = RandomPattern(
        footprint_bytes=4096.0,     # level geometry and solver scalars
        partitioned=False,
        shared_fraction=0.0,
    )

    phases = []
    for k, edge_k in enumerate(level_edges(edge)):
        points = float(edge_k) ** 3
        grid_bytes = _ARRAYS * 8.0 * points
        plane_bytes = float(edge_k) * float(edge_k) * 8.0
        stencil = StencilPattern(
            footprint_bytes=grid_bytes,
            partitioned=True,
            shared_fraction=0.12,    # halo planes between thread slabs
            reuse_window_bytes=3.0 * plane_bytes,
            stride_bytes=4,          # each point re-referenced ~8x/sweep
            window_hit_fraction=0.62,
            window_scales=False,     # slab decomposition: full planes
        )
        phases.append(Phase(
            name=f"smooth_l{k}",
            instructions=points * cycles * _FLOPS_PER_POINT * FLOP_TO_UOPS,
            mem_ops_per_instr=0.5,
            load_fraction=0.74,
            access_mix=AccessMix.of((0.85, stencil), (0.15, scalars)),
            code_footprint_uops=_CODE_UOPS,
            code_footprint_bytes=_CODE_UOPS * BYTES_PER_UOP,
            branches_per_instr=0.06,
            branch_misp_intrinsic=0.003,
            branch_sites=450,
            ilp=1.5,
            parallel=True,
            # Coarse levels have fewer slabs than threads: imbalance and
            # loop-exit mispredicts grow as the grid shrinks.
            imbalance=min(0.35, 0.03 * (1 + k)),
            prefetchability=max(0.55, 0.85 - 0.04 * k),
            barriers=6,
            iterations=cycles,
            inner_trip_count=float(edge_k),
            trip_divides=False,
            branch_history_sensitivity=0.15,
            mlp=4.0,
            halo_bytes_per_iteration=2.0 * plane_bytes,
        ))

    # Bottom solve: BiCGStab on the sub-_BOTTOM_EDGE grid.  Cache-resident
    # data, many short iterations, reductions after each SpMV — runtime is
    # barriers and serialization, not bandwidth.
    bottom_points = float(_BOTTOM_EDGE // 2) ** 3
    phases.append(Phase(
        name="bottom_solve",
        instructions=(
            bottom_points * cycles * _BOTTOM_ITERS
            * _BOTTOM_FLOPS_PER_POINT * FLOP_TO_UOPS
        ),
        mem_ops_per_instr=0.42,
        load_fraction=0.78,
        access_mix=AccessMix.of(
            (0.7, StencilPattern(
                footprint_bytes=_ARRAYS * 8.0 * bottom_points,
                partitioned=True,
                shared_fraction=0.3,
                reuse_window_bytes=0.0,
                stride_bytes=8,
                window_hit_fraction=0.5,
                window_scales=False,
            )),
            (0.3, scalars),
        ),
        code_footprint_uops=2500.0,
        code_footprint_bytes=2500.0 * BYTES_PER_UOP,
        branches_per_instr=0.11,
        branch_misp_intrinsic=0.01,
        branch_sites=300,
        ilp=1.1,
        parallel=True,
        imbalance=0.35,
        prefetchability=0.5,
        barriers=2 * _BOTTOM_ITERS,   # reductions bracket every iteration
        iterations=cycles,
        inner_trip_count=float(_BOTTOM_EDGE // 2),
        trip_divides=False,
        branch_history_sensitivity=0.3,
        smt_capacity=1.1,
        mlp=1.5,
        halo_bytes_per_iteration=1024.0,
    ))

    return Workload(
        name=NAME,
        problem_class=problem_class.value,
        phases=tuple(phases),
    )


@functools.lru_cache(maxsize=32)
def _spec_cached(
    problem_class: ProblemClass,
    fine_edge: Optional[int],
    vcycles: Optional[int],
) -> WorkloadSpec:
    return WorkloadSpec.from_workload(
        build(problem_class, fine_edge=fine_edge, vcycles=vcycles),
        description=(
            "miniGMG-style geometric multigrid V-cycle: level-by-level "
            "8x-shrinking working sets plus a barrier-bound bottom solve"
        ),
        kind="application",
        memory_bound_score=0.8,
    )


def spec(
    problem_class: ProblemClass = ProblemClass.B,
    fine_edge: Optional[int] = None,
    vcycles: Optional[int] = None,
) -> WorkloadSpec:
    """The registry producer for ``minigmg`` (memoized per parameters)."""
    return _spec_cached(problem_class, fine_edge, vcycles)
