"""Cross-study run cache: content-addressed memoization of simulation runs.

A :class:`~repro.core.study.Study` used to memoize runs per instance, so
two studies built with identical inputs — which happens constantly in the
sensitivity sweeps, where only *one* parameter of a perturbed pair
actually changes per direction — re-simulated everything from scratch.
This module promotes the memo to a process-wide cache keyed by a
*fingerprint* of everything that determines a run's result:

* the machine parameters (full nested dataclass contents),
* the NAS problem class,
* the scheduler policy name,
* the OpenMP environment,
* and the per-run key (benchmark/config, or pair).

Fingerprints are SHA-256 over stable ``repr`` forms, so equality is by
content, not identity: any two studies configured the same share results.

Tiers:

* **memory** — a plain dict, always on (unless disabled);
* **disk** — optional, under a directory (``results/.cache`` for the
  CLI's ``run-all``); entries are atomically-written pickle files named
  by fingerprint, so concurrent writers (the parallel sweep runner's
  workers) cannot corrupt each other.

Control knobs: ``REPRO_NO_CACHE=1`` disables both tiers globally;
``REPRO_CACHE_DIR=<path>`` enables the disk tier by default.  Both are
overridable programmatically via :func:`configure`.

**Disk-entry integrity.**  Each disk entry is an *envelope* stamping
the value's pickle bytes with the entry schema, the package version,
and a SHA-256 of the payload.  On load all three are verified before
the payload is deserialized; any mismatch — a torn write, bit rot, an
entry from an older package whose class layouts have since changed, or
a pre-envelope legacy file — moves the entry to
``<disk_dir>/quarantine/`` and counts in ``CacheStats.quarantined``
instead of crashing (stale pickles used to raise ``AttributeError`` /
``ModuleNotFoundError`` straight through ``run-all``) or silently
deserializing a stale layout.

**Supervision (PR 9).**  Transient read ``OSError`` is retried with
bounded deterministic backoff (``CacheStats.read_retries``); repeated
failures open the ``cache-read`` circuit breaker and the instance
degrades to memory-only for the rest of the process.  The quarantine
directory is bounded by :data:`QUARANTINE_MAX_ENTRIES` /
:data:`QUARANTINE_MAX_AGE_S` (evictions in ``CacheStats.evicted``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.testing import faults

__all__ = [
    "CACHE_ENTRY_SCHEMA",
    "CacheStats",
    "QUARANTINE_DIR",
    "QUARANTINE_MAX_AGE_S",
    "QUARANTINE_MAX_ENTRIES",
    "RunCache",
    "configure",
    "get_cache",
    "study_fingerprint",
]

NO_CACHE_ENV = "REPRO_NO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Disk-entry envelope schema, bumped whenever the on-disk layout of an
#: entry changes; entries with any other value are quarantined.
CACHE_ENTRY_SCHEMA = 1

#: Magic marker distinguishing an envelope from a legacy raw pickle.
_ENVELOPE_MAGIC = "repro-runcache"

#: Subdirectory of ``disk_dir`` where bad entries are moved.
QUARANTINE_DIR = "quarantine"

#: Quarantine retention bounds.  Quarantined entries exist for *post
#: hoc* debugging, not forever: the directory would otherwise grow one
#: file per corrupt read for the life of the cache directory (a soak
#: loop injecting corruption fills a disk this way).  Oldest-first
#: eviction keeps at most this many files...
QUARANTINE_MAX_ENTRIES = 64

#: ...and nothing older than this (seconds; 7 days).
QUARANTINE_MAX_AGE_S = 7 * 24 * 3600.0

#: Sentinel distinguishing "not cached" from a cached None.
_MISS = object()


def study_fingerprint(
    problem_class: Any,
    params: Any,
    scheduler_name: str,
    omp: Any,
) -> str:
    """Content fingerprint of a study configuration.

    ``params`` may be None (platform default) or a (possibly nested)
    frozen dataclass; ``omp`` likewise.  Dataclasses are serialized via
    ``dataclasses.asdict`` so field *values* — not object identity —
    drive the hash.
    """
    def canon(obj: Any) -> str:
        if obj is None:
            return "None"
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return f"{type(obj).__name__}:{dataclasses.asdict(obj)!r}"
        return repr(obj)

    payload = "\x1f".join(
        [canon(problem_class), canon(params), scheduler_name, canon(omp)]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    #: Disk entries rejected by the integrity check and moved aside
    #: (each also counts as a miss — the caller recomputes).
    quarantined: int = 0
    #: Transient-``OSError`` disk reads retried with backoff.
    read_retries: int = 0
    #: Quarantined files deleted by the retention policy (count/age).
    evicted: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """An immutable copy of the current counters."""
        return CacheStats(
            self.memory_hits, self.disk_hits, self.misses,
            self.quarantined, self.read_retries, self.evicted,
        )

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier snapshot (the pipeline
        attributes hits/misses to individual experiments this way)."""
        return CacheStats(
            memory_hits=self.memory_hits - earlier.memory_hits,
            disk_hits=self.disk_hits - earlier.disk_hits,
            misses=self.misses - earlier.misses,
            quarantined=self.quarantined - earlier.quarantined,
            read_retries=self.read_retries - earlier.read_retries,
            evicted=self.evicted - earlier.evicted,
        )

    def as_dict(self) -> Dict[str, Any]:
        """Counters plus derived rates, for manifests and reports."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "read_retries": self.read_retries,
            "evicted": self.evicted,
            "hits": self.hits,
            "lookups": self.lookups,
            "hit_rate": round(self.hit_rate, 4),
        }


class RunCache:
    """Two-tier (memory + optional disk) content-addressed result cache."""

    def __init__(
        self,
        disk_dir: Optional[Path] = None,
        enabled: bool = True,
    ):
        self._mem: Dict[Tuple[str, str], Any] = {}
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self.enabled = enabled
        self.stats = CacheStats()
        #: Set when the cache-read circuit breaker opens: the disk tier
        #: is skipped (reads *and* writes) for the life of the instance.
        self.memory_only_reason: Optional[str] = None

    # ------------------------------------------------------------------
    def _entry_key(self, study_fp: str, run_key: Tuple[Any, ...]) -> str:
        return hashlib.sha256(
            f"{study_fp}\x1f{run_key!r}".encode()
        ).hexdigest()

    def _disk_path(self, entry_key: str) -> Optional[Path]:
        if self.disk_dir is None or self.memory_only_reason is not None:
            return None
        return self.disk_dir / f"{entry_key}.pkl"

    # ------------------------------------------------------------------
    def get(self, study_fp: str, run_key: Tuple[Any, ...]) -> Any:
        """Return the cached value, or the module-level miss sentinel."""
        if not self.enabled:
            return _MISS
        entry_key = self._entry_key(study_fp, run_key)
        if entry_key in self._mem:
            self.stats.memory_hits += 1
            return self._mem[entry_key]
        path = self._disk_path(entry_key)
        if path is not None and path.exists():
            value = self._disk_load(path)
            if not RunCache.is_miss(value):
                self._mem[entry_key] = value
                self.stats.disk_hits += 1
                return value
        self.stats.misses += 1
        return _MISS

    def _disk_load(self, path: Path) -> Any:
        """Verify and deserialize one disk entry (miss sentinel on any
        problem; bad *content* is quarantined, bad *IO* is just a miss).

        ``OSError`` from the read is treated as transient: retried a
        bounded number of times with deterministic backoff, then — still
        a miss, the entry may be fine — counted against the
        ``cache-read`` circuit breaker.  When the breaker opens the
        whole instance degrades to memory-only (a campaign whose cache
        disk keeps erroring should stop paying retry latency per read).
        """
        from repro.supervise import backoff as _backoff

        def read_bytes() -> bytes:
            faults.maybe_slow_cache()
            faults.maybe_corrupt_cache_file(path)
            faults.maybe_raise_cache_io("read")
            return path.read_bytes()

        def note_retry(attempt: int, exc: BaseException) -> None:
            self.stats.read_retries += 1

        brk = _backoff.breaker("cache-read")
        try:
            raw = _backoff.BackoffPolicy().run(
                read_bytes, (OSError,), key=path.name, on_retry=note_retry
            )
        except OSError as exc:
            # Unreadable even after retries (permissions, persistent
            # IO trouble): the entry may be fine, so leave it in place
            # and recompute — but count the strike.
            if brk.record_failure(f"{type(exc).__name__}: {exc}"):
                self.memory_only_reason = (
                    f"cache-read breaker open ({brk.opened_reason})"
                )
            return _MISS
        brk.record_success()
        try:
            envelope = pickle.loads(raw)
        except Exception:
            # Garbage bytes raise anything from UnpicklingError to
            # AttributeError; none of it may escape a cache *read*.
            return self._quarantine(path, "undecodable envelope")
        if (
            not isinstance(envelope, dict)
            or envelope.get("magic") != _ENVELOPE_MAGIC
        ):
            return self._quarantine(path, "not an envelope (legacy entry)")
        if envelope.get("schema") != CACHE_ENTRY_SCHEMA:
            return self._quarantine(path, "entry-schema mismatch")
        if envelope.get("package_version") != _package_version():
            return self._quarantine(path, "package-version mismatch")
        payload = envelope.get("payload")
        if not isinstance(payload, bytes) or hashlib.sha256(
            payload
        ).hexdigest() != envelope.get("sha256"):
            return self._quarantine(path, "payload checksum mismatch")
        try:
            return pickle.loads(payload)
        except Exception:
            # Checksum passed but the class layout no longer exists
            # (same-version refactor): quarantine rather than crash with
            # AttributeError/ModuleNotFoundError mid run-all.
            return self._quarantine(path, "payload not deserializable")

    def _quarantine(self, path: Path, reason: str) -> Any:
        """Move a bad entry aside so it is never served *or* retried,
        count it, and report a miss to the caller."""
        dest_dir = path.parent / QUARANTINE_DIR
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.stats.quarantined += 1
        self._evict_quarantine(dest_dir)
        return _MISS

    def _evict_quarantine(self, dest_dir: Path) -> None:
        """Enforce the quarantine retention bounds (count + age).

        Best-effort: eviction must never turn a cache miss into a
        crash, so every filesystem error here is swallowed.
        """
        try:
            entries = sorted(
                (p for p in dest_dir.iterdir() if p.is_file()),
                key=lambda p: (p.stat().st_mtime, p.name),
            )
        except OSError:
            return
        now = time.time()
        survivors = []
        for p in entries:
            try:
                expired = now - p.stat().st_mtime > QUARANTINE_MAX_AGE_S
            except OSError:
                continue
            if expired:
                self._evict_one(p)
            else:
                survivors.append(p)
        for p in survivors[: max(0, len(survivors) - QUARANTINE_MAX_ENTRIES)]:
            self._evict_one(p)

    def _evict_one(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            return
        self.stats.evicted += 1

    def put(self, study_fp: str, run_key: Tuple[Any, ...], value: Any) -> None:
        if not self.enabled:
            return
        entry_key = self._entry_key(study_fp, run_key)
        self._mem[entry_key] = value
        path = self._disk_path(entry_key)
        if path is None:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            envelope = {
                "magic": _ENVELOPE_MAGIC,
                "schema": CACHE_ENTRY_SCHEMA,
                "package_version": _package_version(),
                "payload": payload,
                "sha256": hashlib.sha256(payload).hexdigest(),
            }
            faults.maybe_raise_cache_io("write")
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(
                        envelope, fh, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # The disk tier is an accelerator, never a correctness
            # dependency: fall back silently to memory-only.
            pass

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS

    def clear(self, memory: bool = True, disk: bool = False) -> None:
        """Drop cached entries (memory tier by default)."""
        if memory:
            self._mem.clear()
        if disk and self.disk_dir is not None and self.disk_dir.exists():
            for p in self.disk_dir.glob("*.pkl"):
                try:
                    p.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        return len(self._mem)


def _package_version() -> str:
    """The running package's version (stamped into disk entries)."""
    import repro

    return repro.__version__


# ----------------------------------------------------------------------
_global_cache: Optional[RunCache] = None


def _default_cache() -> RunCache:
    disabled = os.environ.get(NO_CACHE_ENV, "").strip() not in ("", "0")
    disk = os.environ.get(CACHE_DIR_ENV, "").strip() or None
    return RunCache(
        disk_dir=Path(disk) if disk else None, enabled=not disabled
    )


def get_cache() -> RunCache:
    """The process-wide shared run cache (created on first use from the
    ``REPRO_NO_CACHE`` / ``REPRO_CACHE_DIR`` environment)."""
    global _global_cache
    if _global_cache is None:
        _global_cache = _default_cache()
    return _global_cache


def configure(
    disk_dir: Optional[os.PathLike] = None,
    enabled: Optional[bool] = None,
    reset: bool = False,
) -> RunCache:
    """Reconfigure the process-wide cache; returns it.

    Args:
        disk_dir: enable the on-disk tier under this directory (None
            leaves the current setting; pass ``reset=True`` to rebuild
            from the environment).
        enabled: switch caching on/off.
        reset: discard the current instance (and its memory tier) first.
    """
    global _global_cache
    if reset or _global_cache is None:
        _global_cache = _default_cache()
    if disk_dir is not None:
        _global_cache.disk_dir = Path(disk_dir)
    if enabled is not None:
        _global_cache.enabled = enabled
    return _global_cache
