"""Runtime tuning — the paper's future-work direction, implemented.

The paper closes by proposing schedulers that use runtime performance
information to pick thread mixes and placements on chip-multithreaded
SMPs (citing Curtis-Maury et al. and Zhang & Voss).  This package
implements both ideas on the simulated platform:

* :mod:`repro.tuning.loop_tuner` — a self-tuning loop scheduler that
  trials static/dynamic/guided schedules and commits to the fastest
  (Zhang & Voss, IPDPS'05);
* :mod:`repro.tuning.placement_tuner` — a feedback placement tuner that
  samples candidate thread placements in short trial intervals and
  commits to the best-throughput policy (Curtis-Maury et al., QEST'05).
"""

from repro.tuning.loop_tuner import LoopTuneResult, tune_loop_schedule
from repro.tuning.placement_tuner import (
    PlacementTuneResult,
    tune_placement,
)

__all__ = [
    "LoopTuneResult",
    "tune_loop_schedule",
    "PlacementTuneResult",
    "tune_placement",
]
