"""Extension: do the paper's conclusions survive problem-size changes?

The paper fixes class B ("large enough to provide realistic results,
while ensuring that the working set fits in memory").  This study
re-runs the headline comparisons for classes W, A, B and C and reports
how the architecture ranking and the HT-on-8-vs-HT-off-4 verdict shift:
smaller classes fit more of their working set in cache, relieving the
bus and making HT look better; class C pushes every configuration
deeper into bandwidth saturation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.report import format_table
from repro.analysis.result import ExperimentResult
from repro.core.context import RunContext, as_context
from repro.core.study import Study
from repro.machine.configurations import Architecture
from repro.experiments import table2_avg_speedup
from repro.sim import batch as _batch
from repro.sim.parallel import parallel_map, serial_map


@dataclass
class ClassScalingResult(ExperimentResult):
    """Per-class Table-2 averages and verdicts."""

    classes: List[str] = field(default_factory=list)
    #: class letter -> {architecture -> average speedup}.
    averages: Dict[str, Dict[Architecture, float]] = field(
        default_factory=dict
    )
    #: class letter -> HT on 2-8-2 slowdown vs HT off 2-4-2.
    ht8_slowdown: Dict[str, float] = field(default_factory=dict)
    #: class letter -> benchmarks faster at HT on 2-8-2.
    ht8_winners: Dict[str, List[str]] = field(default_factory=dict)


def _class_summary(task):
    """Headline comparisons for one problem class (parallel worker)."""
    ctx, cls, benchmarks = task
    study = ctx.study(problem_class=cls)
    t2 = table2_avg_speedup.run(study, benchmarks=benchmarks)
    table = study.speedup_table(benchmarks=benchmarks)
    winners = [
        b
        for b in table.benchmarks
        if table.get(b, "ht_on_8_2") > table.get(b, "ht_off_4_2")
    ]
    return t2.averages, t2.ht_on_8_2_slowdown, winners


def run(
    ctx: Union[RunContext, Study, None] = None,
    classes: Sequence[str] = ("W", "A", "B", "C"),
    benchmarks: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> ClassScalingResult:
    """Sweep the problem class and recompute the headline comparisons.

    Classes are independent studies, so the sweep fans out over the
    parallel runner (``jobs=None`` uses the context's setting, falling
    back to the global default).  With machine-axis batching enabled,
    the first class runs scalar as the recording lane and the remaining
    classes are prefetched through the batched engine instead
    (byte-identical results; ``jobs`` is then ignored).
    """
    ctx = as_context(ctx)
    jobs = jobs if jobs is not None else ctx.jobs
    result = ClassScalingResult(classes=list(classes))
    use_batch = (
        len(classes) >= 2
        and _batch.batching_allowed(len(classes) - 1)
        and not _batch.runtime_forces_scalar()
    )
    if use_batch:
        with _batch.record_run_keys() as keys:
            first = _class_summary((ctx, classes[0], benchmarks))
        _batch.note_scalar_fallback(1)  # the recording lane runs scalar
        lanes = [ctx.study(problem_class=cls) for cls in classes[1:]]
        _batch.prefetch_study_runs(lanes, keys)
        summaries = [first] + serial_map(
            _class_summary,
            [(ctx, cls, benchmarks) for cls in classes[1:]],
        )
    else:
        summaries = parallel_map(
            _class_summary,
            [(ctx, cls, benchmarks) for cls in classes],
            jobs=jobs,
        )
    for cls, (averages, slowdown, winners) in zip(classes, summaries):
        result.averages[cls] = averages
        result.ht8_slowdown[cls] = slowdown
        result.ht8_winners[cls] = winners
    return result


def report(result: ClassScalingResult) -> str:
    archs = list(Architecture)
    archs.remove(Architecture.SERIAL)
    rows = []
    for cls in result.classes:
        rows.append(
            [cls]
            + [result.averages[cls][a] for a in archs]
            + [result.ht8_slowdown[cls] * 100.0,
               ",".join(result.ht8_winners[cls]) or "-"]
        )
    return format_table(
        ["class"] + [a.value for a in archs]
        + ["HTon-8-2 slowdown %", "HTon-8-2 winners"],
        rows,
        title="Problem-class scaling of the paper's headline comparisons",
        float_fmt="%.2f",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
