"""Tests for the analytic hierarchy model, including cross-validation
against the structural cache simulator."""

import numpy as np
import pytest

from repro.machine.params import paxville_params
from repro.mem.cache import simulate_miss_rate
from repro.mem.hierarchy import HierarchyModel, UOPS_PER_TRACE_LINE
from repro.trace.patterns import AccessMix, RandomPattern, StreamingPattern
from repro.trace.phase import Phase
from repro.trace.sampling import sample_mix


def make_phase(mix=None, code_uops=4000.0, **over):
    mix = mix or AccessMix.of(
        (0.6, StreamingPattern(footprint_bytes=64e6, stride_bytes=8)),
        (0.4, RandomPattern(footprint_bytes=4096.0)),
    )
    defaults = dict(
        name="p",
        instructions=1e9,
        mem_ops_per_instr=0.4,
        access_mix=mix,
        code_footprint_uops=code_uops,
        code_footprint_bytes=code_uops * 2.3,
        branches_per_instr=0.08,
        branch_misp_intrinsic=0.01,
        branch_sites=400,
        ilp=1.4,
    )
    defaults.update(over)
    return Phase(**defaults)


@pytest.fixture
def model():
    return HierarchyModel(paxville_params())


def evaluate(model, phase, **over):
    kw = dict(
        n_threads=1,
        core_sharers=1,
        same_data=True,
        same_code=True,
        total_visible_contexts=1,
        co_phase=None,
    )
    kw.update(over)
    return model.evaluate(phase, **kw)


class TestLevelConsistency:
    def test_l2_global_never_exceeds_l1(self, model):
        r = evaluate(model, make_phase())
        assert r.l2_misses_per_instr <= r.l1_misses_per_instr + 1e-12

    def test_l2_local_rate_is_ratio(self, model):
        r = evaluate(model, make_phase())
        assert r.l2_miss_rate == pytest.approx(
            r.l2_misses_per_instr / r.l1_misses_per_instr, rel=1e-9
        )

    def test_accesses_per_instr(self, model):
        phase = make_phase(mem_ops_per_instr=0.5)
        r = evaluate(model, phase)
        assert r.l1_accesses_per_instr == pytest.approx(0.5)
        assert r.dtlb_accesses_per_instr == pytest.approx(0.5)
        assert r.tc_accesses_per_instr == pytest.approx(
            1.0 / UOPS_PER_TRACE_LINE
        )
        assert r.l2_accesses_per_instr == pytest.approx(
            r.l1_misses_per_instr
        )

    def test_rates_bounded(self, model):
        r = evaluate(model, make_phase())
        for v in (r.l1_miss_rate, r.l2_miss_rate, r.tc_miss_rate,
                  r.itlb_miss_rate, r.dtlb_miss_rate):
            assert 0.0 <= v <= 1.0


class TestSharingEffects:
    def test_ht_sibling_raises_data_miss_rates(self, model):
        mix = AccessMix.of(
            (1.0, RandomPattern(footprint_bytes=40e3, shared_fraction=0.0)),
        )
        phase = make_phase(mix=mix)
        solo = evaluate(model, phase, core_sharers=1)
        pair = evaluate(model, phase, core_sharers=2, same_data=True,
                        same_code=True)
        assert pair.l1_miss_rate > solo.l1_miss_rate

    def test_same_code_sibling_amortizes_trace_cache(self, model):
        phase = make_phase(code_uops=30000.0)  # overflows the 12 K TC
        solo = evaluate(model, phase, core_sharers=1)
        pair = evaluate(model, phase, core_sharers=2, same_code=True)
        assert pair.tc_miss_rate == pytest.approx(
            solo.tc_miss_rate / 2, rel=0.01
        )

    def test_different_code_sibling_degrades_trace_cache(self, model):
        phase = make_phase(code_uops=8000.0)
        other = make_phase(code_uops=8000.0)
        solo = evaluate(model, phase, core_sharers=1)
        mixed = evaluate(model, phase, core_sharers=2, same_code=False,
                         same_data=False, co_phase=other)
        assert mixed.tc_miss_rate > solo.tc_miss_rate

    def test_itlb_os_noise_grows_with_visible_contexts(self, model):
        phase = make_phase()
        small = evaluate(model, phase, total_visible_contexts=1)
        big = evaluate(model, phase, total_visible_contexts=8)
        assert big.itlb_miss_rate > small.itlb_miss_rate

    def test_work_sharing_cuts_partitioned_footprint(self, model):
        mix = AccessMix.of(
            (1.0, StreamingPattern(footprint_bytes=2e6, stride_bytes=8,
                                   partitioned=True, passes=50)),
        )
        phase = make_phase(mix=mix)
        one = evaluate(model, phase, n_threads=1)
        eight = evaluate(model, phase, n_threads=8)
        # 2 MB / 8 threads = 256 KB fits the 1 MB L2.
        assert eight.l2_misses_per_instr < one.l2_misses_per_instr


class TestCrossValidation:
    """The analytic miss rates must track the structural simulator."""

    @pytest.mark.parametrize("footprint,expect_rel", [
        (4 * 1024, 0.05),        # fits L1
        (256 * 1024, 0.12),      # fits L2, misses L1
        (16 * 1024 * 1024, 0.15) # misses both
    ])
    def test_random_pattern_l1(self, model, footprint, expect_rel):
        params = paxville_params()
        mix = AccessMix.of((1.0, RandomPattern(footprint_bytes=footprint)),)
        analytic = mix.miss_rate(params.l1d.size_bytes, params.l1d.line_bytes)
        stream = sample_mix(mix, 40000, 40000, np.random.default_rng(7))
        measured = simulate_miss_rate(params.l1d, stream.addresses, 0.3)
        assert measured == pytest.approx(analytic, abs=0.05)

    def test_streaming_pattern_structural(self, model):
        params = paxville_params()
        mix = AccessMix.of(
            (1.0, StreamingPattern(footprint_bytes=8e6, stride_bytes=8)),
        )
        analytic = mix.miss_rate(params.l1d.size_bytes, params.l1d.line_bytes)
        stream = sample_mix(mix, 30000, 30000, np.random.default_rng(8))
        measured = simulate_miss_rate(params.l1d, stream.addresses, 0.2)
        assert measured == pytest.approx(analytic, abs=0.03)


class TestExtraLevelChain:
    """The N-level chain: each extra level filters the previous one."""

    @pytest.fixture
    def three_level_model(self):
        from repro.machine.registry import resolve_machine

        return HierarchyModel(
            resolve_machine("broadwell-shared-l3").to_params()
        )

    def test_chain_closure(self, three_level_model):
        r = evaluate(three_level_model, make_phase())
        assert len(r.extra_levels) == 1
        l3 = r.extra_levels[0]
        assert l3.name == "l3"
        # Accesses into the L3 are exactly the L2's misses, and the
        # level's misses close over its local rate.
        assert l3.accesses_per_instr == pytest.approx(
            r.l2_misses_per_instr, rel=1e-12
        )
        assert l3.misses_per_instr == pytest.approx(
            l3.accesses_per_instr * l3.miss_rate, rel=1e-9
        )
        assert 0.0 <= l3.miss_rate <= 1.0
        assert l3.misses_per_instr <= r.l2_misses_per_instr + 1e-12

    def test_llc_misses_follow_deepest_level(self, three_level_model):
        r = evaluate(three_level_model, make_phase())
        assert r.llc_misses_per_instr == r.extra_levels[-1].misses_per_instr

    def test_two_level_llc_is_l2(self, model):
        r = evaluate(model, make_phase())
        assert r.extra_levels == ()
        assert r.llc_misses_per_instr == r.l2_misses_per_instr

    def test_extra_sharing_widens_contention(self, three_level_model):
        solo = evaluate(
            three_level_model, make_phase(),
            n_threads=4, core_sharers=1, same_data=False,
            total_visible_contexts=4,
            extra_sharing=[(1, True)],
        )
        contended = evaluate(
            three_level_model, make_phase(),
            n_threads=4, core_sharers=1, same_data=False,
            total_visible_contexts=4,
            extra_sharing=[(4, False)],
        )
        assert contended.extra_levels[0].misses_per_instr >= \
            solo.extra_levels[0].misses_per_instr - 1e-15
