"""OpenMP runtime model: teams, work-sharing, synchronization.

Models the runtime mechanics that shape wall-clock time under different
thread counts: loop iteration partitioning (static/dynamic/guided),
fork/join and barrier latency (which grow with team size), and reduction
trees.  The concrete partitioners are real implementations — they produce
exact iteration ranges and are property-tested — and the cost models feed
the phase engine.
"""

from repro.openmp.env import OMPEnvironment, ScheduleKind
from repro.openmp.loops import (
    Chunk,
    static_chunks,
    dynamic_chunks,
    guided_chunks,
    partition_imbalance,
)
from repro.openmp.sync import SyncCosts, barrier_cycles, fork_join_cycles, reduction_cycles

__all__ = [
    "OMPEnvironment",
    "ScheduleKind",
    "Chunk",
    "static_chunks",
    "dynamic_chunks",
    "guided_chunks",
    "partition_imbalance",
    "SyncCosts",
    "barrier_cycles",
    "fork_join_cycles",
    "reduction_cycles",
]
