"""Tests for the power/energy model."""

import pytest

from repro.core.study import Study
from repro.experiments import energy_study
from repro.machine.power import (
    PowerModel,
    PowerParams,
    energy_per_instruction_nj,
)


@pytest.fixture(scope="module")
def study():
    return Study("B")


@pytest.fixture(scope="module")
def model():
    return PowerModel()


class TestPowerModel:
    def test_components_positive(self, study, model):
        report = model.estimate(study.run("CG", "ht_off_4_2"))
        assert report.core_dynamic_j > 0
        assert report.core_static_j > 0
        assert report.uncore_j > 0
        assert report.dram_j > 0
        assert report.total_j == pytest.approx(
            report.core_dynamic_j + report.core_static_j
            + report.uncore_j + report.dram_j
        )

    def test_average_power_plausible(self, study, model):
        """A loaded two-chip NetBurst server sits well inside its
        ~270 W combined TDP but far above idle."""
        report = model.estimate(study.run("SP", "ht_off_4_2"))
        assert 60 < report.average_watts < 300

    def test_more_cores_more_static_power(self, study, model):
        one = model.estimate(study.run("EP", "ht_off_2_1"))
        two = model.estimate(study.run("EP", "ht_off_4_2"))
        assert two.average_watts > one.average_watts

    def test_ht_adds_static_power(self, study, model):
        """Same physical span (1 chip, 2 cores), HT on vs off."""
        off = model.estimate(study.run("EP", "ht_off_2_1"))
        on = model.estimate(study.run("EP", "ht_on_4_1"))
        # Both use 2 cores on 1 chip; the HT run adds duplicated state
        # power and runs longer per-thread but finishes sooner overall...
        # compare static watts directly via per-second rate.
        off_static_w = off.core_static_j / off.runtime_seconds
        on_static_w = on.core_static_j / on.runtime_seconds
        assert on_static_w > off_static_w

    def test_dynamic_energy_scales_with_instructions(self, study, model):
        small = model.estimate(
            Study("W").run("EP", "ht_off_2_1")
        )
        big = model.estimate(study.run("EP", "ht_off_2_1"))
        assert big.core_dynamic_j > 10 * small.core_dynamic_j

    def test_energy_per_instruction(self, study, model):
        from repro.counters.events import Event

        run = study.run("EP", "ht_off_2_1")
        report = model.estimate(run)
        instr = run.collector.total()[Event.INSTR_RETIRED]
        epi = energy_per_instruction_nj(report, instr)
        assert 5 < epi < 200  # nJ/uop, NetBurst ballpark

    def test_energy_per_instruction_validation(self, study, model):
        report = model.estimate(study.run("EP", "ht_off_2_1"))
        with pytest.raises(ValueError):
            energy_per_instruction_nj(report, 0)

    def test_custom_params(self, study):
        hot = PowerModel(PowerParams(core_static_w=100.0))
        cold = PowerModel(PowerParams(core_static_w=1.0))
        run = study.run("EP", "ht_off_2_1")
        assert hot.estimate(run).total_j > cold.estimate(run).total_j


class TestEnergyStudy:
    @pytest.fixture(scope="class")
    def result(self, study):
        return energy_study.run(study)

    def test_paper_thesis_cmt_wins_edp(self, result):
        """The paper's efficiency conclusion restated in energy terms:
        the single HT-enabled dual-core chip has the best EDP."""
        assert result.best_edp_config() == "ht_on_4_1"

    def test_serial_worst_edp(self, result):
        """Racing to finish beats idling: serial pays static power the
        longest and loses on EDP despite the lowest average power."""
        assert result.average_edp("serial") == max(
            result.average_edp(c) for c in result.config_order
        )

    def test_report_renders(self, result):
        text = energy_study.report(result)
        assert "best energy-delay product: ht_on_4_1" in text
