"""Tests for the CPI/stall accounting and SMT contention model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.pipeline import PipelineModel, SMT_CAPACITY, smt_issue_slowdown
from repro.machine.params import paxville_params
from repro.mem.hierarchy import HierarchyModel
from repro.trace.patterns import AccessMix, RandomPattern, StreamingPattern
from repro.trace.phase import Phase


def compute_phase(**over):
    defaults = dict(
        name="compute",
        instructions=1e9,
        mem_ops_per_instr=0.1,
        access_mix=AccessMix.of((1.0, RandomPattern(footprint_bytes=2048.0)),),
        code_footprint_uops=2000.0,
        code_footprint_bytes=4600.0,
        branches_per_instr=0.05,
        branch_misp_intrinsic=0.005,
        branch_sites=100,
        ilp=1.6,
        inner_trip_count=500.0,
    )
    defaults.update(over)
    return Phase(**defaults)


def memory_phase(**over):
    defaults = dict(
        name="memory",
        instructions=1e9,
        mem_ops_per_instr=0.5,
        access_mix=AccessMix.of(
            (1.0, StreamingPattern(footprint_bytes=1e9, stride_bytes=8)),
        ),
        code_footprint_uops=2000.0,
        code_footprint_bytes=4600.0,
        branches_per_instr=0.05,
        branch_misp_intrinsic=0.005,
        branch_sites=100,
        ilp=1.6,
        inner_trip_count=500.0,
    )
    defaults.update(over)
    return Phase(**defaults)


@pytest.fixture
def setup():
    params = paxville_params()
    return params, PipelineModel(params), HierarchyModel(params)


def rates_for(hier, phase, **over):
    kw = dict(n_threads=1, core_sharers=1, same_data=True, same_code=True,
              total_visible_contexts=1)
    kw.update(over)
    return hier.evaluate(phase, **kw)


class TestSmtIssueSlowdown:
    def test_idle_sibling_free(self):
        assert smt_issue_slowdown(1.0, 0.0) == 1.0
        assert smt_issue_slowdown(1.0, 0.0, capacity=0.8) == 1.0

    def test_light_pair_fits(self):
        assert smt_issue_slowdown(0.3, 0.3) == 1.0

    def test_compute_pair_contends(self):
        slow = smt_issue_slowdown(1.0, 1.0)
        assert slow == pytest.approx(2.0 / SMT_CAPACITY)

    def test_custom_capacity(self):
        assert smt_issue_slowdown(1.0, 1.0, capacity=1.0) == pytest.approx(2.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            smt_issue_slowdown(1.0, 1.0, capacity=0.0)

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=30)
    def test_at_least_one(self, u1, u2):
        assert smt_issue_slowdown(u1, u2) >= 1.0


class TestSoloUtilization:
    def test_compute_bound_near_one(self, setup):
        _, pipe, _ = setup
        assert pipe.solo_utilization(compute_phase(), False) > 0.9

    def test_memory_bound_low(self, setup):
        _, pipe, _ = setup
        mem = memory_phase(mem_ops_per_instr=0.6)
        assert pipe.solo_utilization(mem, False) < 0.6

    def test_bounded(self, setup):
        _, pipe, _ = setup
        for phase in (compute_phase(), memory_phase()):
            u = pipe.solo_utilization(phase, True)
            assert 0.0 < u <= 1.0


class TestBreakdown:
    def test_cpi_is_exec_plus_stalls(self, setup):
        params, pipe, hier = setup
        phase = memory_phase()
        rates = rates_for(hier, phase)
        bd = pipe.breakdown(phase, rates, mispredict_rate=0.02)
        assert bd.cpi == pytest.approx(
            bd.cpi_exec * bd.smt_slowdown + bd.stall_per_instr
        )

    def test_stall_fraction_bounded(self, setup):
        params, pipe, hier = setup
        phase = memory_phase()
        rates = rates_for(hier, phase)
        bd = pipe.breakdown(phase, rates, 0.02)
        assert 0.0 <= bd.stall_fraction < 1.0

    def test_ht_partition_penalty(self, setup):
        params, pipe, hier = setup
        phase = compute_phase(ilp=3.0)  # limited by width, not ILP
        rates = rates_for(hier, phase)
        on = pipe.breakdown(phase, rates, 0.0, ht_enabled=True)
        off = pipe.breakdown(phase, rates, 0.0, ht_enabled=False)
        assert on.cpi_exec > off.cpi_exec

    def test_prefetch_coverage_reduces_memory_stall(self, setup):
        params, pipe, hier = setup
        phase = memory_phase()
        rates = rates_for(hier, phase)
        none = pipe.breakdown(phase, rates, 0.0, prefetch_coverage=0.0)
        full = pipe.breakdown(phase, rates, 0.0, prefetch_coverage=0.8)
        assert full.stall_memory < none.stall_memory

    def test_bus_multiplier_scales_memory_stall(self, setup):
        params, pipe, hier = setup
        phase = memory_phase()
        rates = rates_for(hier, phase)
        base = pipe.breakdown(phase, rates, 0.0, bus_latency_multiplier=1.0)
        loaded = pipe.breakdown(phase, rates, 0.0, bus_latency_multiplier=2.0)
        assert loaded.stall_memory == pytest.approx(
            base.stall_memory * 2.0, rel=0.05
        )

    def test_sibling_mlp_sharing_raises_memory_stall(self, setup):
        params, pipe, hier = setup
        phase = memory_phase()
        rates = rates_for(hier, phase)
        solo = pipe.breakdown(phase, rates, 0.0, core_sharers=1)
        pair = pipe.breakdown(phase, rates, 0.0, core_sharers=2)
        assert pair.stall_memory > solo.stall_memory

    def test_mispredicts_cost_cycles(self, setup):
        params, pipe, hier = setup
        phase = compute_phase(branches_per_instr=0.2)
        rates = rates_for(hier, phase)
        good = pipe.breakdown(phase, rates, mispredict_rate=0.0)
        bad = pipe.breakdown(phase, rates, mispredict_rate=0.1)
        expected = 0.2 * 0.1 * params.branch.mispredict_penalty_cycles
        assert bad.stall_branch - good.stall_branch == pytest.approx(expected)

    def test_phase_mlp_override(self, setup):
        params, pipe, hier = setup
        low = memory_phase(mlp=1.5)
        high = memory_phase(mlp=6.0)
        rates = rates_for(hier, low)
        bd_low = pipe.breakdown(low, rates, 0.0)
        bd_high = pipe.breakdown(high, rates, 0.0)
        assert bd_low.stall_memory > bd_high.stall_memory

    def test_dependent_loads_lose_mlp(self, setup):
        from repro.trace.patterns import PointerChasePattern
        params, pipe, hier = setup
        chase = memory_phase(
            access_mix=AccessMix.of(
                (1.0, PointerChasePattern(footprint_bytes=1e9,
                                          stride_bytes=128)),
            ),
        )
        stream = memory_phase()
        bd_chase = pipe.breakdown(chase, rates_for(hier, chase), 0.0)
        bd_stream = pipe.breakdown(stream, rates_for(hier, stream), 0.0)
        # Per miss, the chase exposes the full latency.
        chase_per_miss = bd_chase.stall_memory / rates_for(
            hier, chase
        ).l2_misses_per_instr
        stream_per_miss = bd_stream.stall_memory / rates_for(
            hier, stream
        ).l2_misses_per_instr
        assert chase_per_miss > stream_per_miss
