"""Tests for sampled stream extraction."""

import numpy as np
import pytest

from repro.trace.patterns import AccessMix, RandomPattern, StreamingPattern
from repro.trace.sampling import SampledStream, sample_mix


def mix():
    return AccessMix.of(
        (0.5, StreamingPattern(footprint_bytes=65536, stride_bytes=8)),
        (0.5, RandomPattern(footprint_bytes=8192)),
    )


class TestSampleMix:
    def test_length_and_scale(self):
        s = sample_mix(mix(), 1000, 1e9, np.random.default_rng(0))
        assert abs(len(s) - 1000) <= 2  # rounding of component shares
        assert s.scale == pytest.approx(1e9 / len(s))

    def test_components_live_in_disjoint_regions(self):
        m = AccessMix.of(
            (0.5, StreamingPattern(footprint_bytes=4096, stride_bytes=8)),
            (0.5, RandomPattern(footprint_bytes=4096)),
        )
        s = sample_mix(m, 2000, 2000, np.random.default_rng(1))
        # First region: [0, 4096); second starts at a 4 KiB-aligned offset
        # past the first footprint.
        region0 = s.addresses[s.addresses < 8192]
        region1 = s.addresses[s.addresses >= 8192]
        assert len(region0) > 0 and len(region1) > 0

    def test_zero_weight_component_ok(self):
        m = AccessMix.of(
            (1.0, RandomPattern(footprint_bytes=4096)),
            (0.0, StreamingPattern(footprint_bytes=4096)),
        )
        s = sample_mix(m, 500, 500, np.random.default_rng(2))
        assert len(s) > 0

    def test_interleaving_alternates_blocks(self):
        m = AccessMix.of(
            (0.5, StreamingPattern(footprint_bytes=1 << 20, stride_bytes=8)),
            (0.5, RandomPattern(footprint_bytes=1 << 20)),
        )
        s = sample_mix(m, 4000, 4000, np.random.default_rng(3),
                       interleave_block=32)
        # The stream must not be two big contiguous runs: check that both
        # regions appear in the first quarter.
        quarter = s.addresses[:1000]
        assert quarter.min() < (1 << 20)
        assert quarter.max() > (1 << 20)

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            sample_mix(mix(), 0, 100)

    def test_total_less_than_sample_clamped(self):
        s = sample_mix(mix(), 1000, 10, np.random.default_rng(4))
        assert s.scale >= 1.0


class TestSampledStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            SampledStream(addresses=np.zeros((2, 2), dtype=np.int64), scale=1.0)
        with pytest.raises(ValueError):
            SampledStream(addresses=np.zeros(2, dtype=np.int64), scale=0.0)
