"""Tests for the MESI coherence models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.coherence import (
    CROSS_CHIP_TRANSFER_CYCLES,
    SAME_CHIP_TRANSFER_CYCLES,
    CoherenceEvent,
    LineState,
    MESIDirectory,
    coherence_misses_per_instr,
    coherence_stall_cycles_per_instr,
)


class TestMESIProtocol:
    def test_cold_read_is_exclusive(self):
        d = MESIDirectory(2)
        assert d.access(0, 0, is_write=False) is CoherenceEvent.MISS_MEMORY
        assert d.state(0, 0) is LineState.EXCLUSIVE

    def test_second_reader_shares(self):
        d = MESIDirectory(2)
        d.access(0, 0, is_write=False)
        ev = d.access(0, 1, is_write=False)
        assert ev is CoherenceEvent.MISS_REMOTE
        assert d.state(0, 0) is LineState.SHARED
        assert d.state(0, 1) is LineState.SHARED

    def test_silent_e_to_m_upgrade(self):
        d = MESIDirectory(2)
        d.access(0, 0, is_write=False)       # E
        ev = d.access(0, 0, is_write=True)   # E->M, no bus action
        assert ev is CoherenceEvent.HIT
        assert d.state(0, 0) is LineState.MODIFIED

    def test_write_invalidates_sharers(self):
        d = MESIDirectory(3)
        for c in range(3):
            d.access(0, c, is_write=False)
        ev = d.access(0, 0, is_write=True)
        assert ev is CoherenceEvent.UPGRADE
        assert d.state(0, 1) is LineState.INVALID
        assert d.state(0, 2) is LineState.INVALID
        assert d.modified_holder(0) == 0

    def test_read_of_modified_line_is_remote_transfer(self):
        d = MESIDirectory(2)
        d.access(0, 0, is_write=False)
        d.access(0, 0, is_write=True)        # cache 0 holds M
        ev = d.access(0, 1, is_write=False)
        assert ev is CoherenceEvent.MISS_REMOTE
        assert d.state(0, 0) is LineState.SHARED

    def test_ping_pong_writes(self):
        """Two writers alternating on one line: every access after the
        first is a remote transfer (the false-sharing pathology)."""
        d = MESIDirectory(2)
        d.access(0, 0, is_write=True)
        events = [
            d.access(0, c, is_write=True) for c in (1, 0, 1, 0)
        ]
        assert all(ev is CoherenceEvent.MISS_REMOTE for ev in events)

    def test_line_granularity(self):
        d = MESIDirectory(2, line_bytes=128)
        d.access(0, 0, is_write=True)
        assert d.access(127, 1, is_write=False) is CoherenceEvent.MISS_REMOTE
        assert d.access(128, 1, is_write=False) is CoherenceEvent.MISS_MEMORY

    def test_stats_accumulate(self):
        d = MESIDirectory(2)
        d.access(0, 0, is_write=False)
        d.access(0, 0, is_write=False)
        assert d.stats[0].count(CoherenceEvent.HIT) == 1
        assert d.stats[0].accesses == 2

    def test_invalid_cache_id(self):
        d = MESIDirectory(2)
        with pytest.raises(ValueError):
            d.access(0, 5, is_write=False)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_invariants_under_random_traffic(self, seed):
        """Protocol invariants hold under arbitrary access interleavings:
        at most one M/E owner, M excludes all other copies."""
        rng = np.random.default_rng(seed)
        d = MESIDirectory(4, line_bytes=64)
        for _ in range(300):
            addr = int(rng.integers(0, 512)) * 64
            cache = int(rng.integers(0, 4))
            write = bool(rng.random() < 0.4)
            d.access(addr, cache, write)
        d.check_invariants()


class TestAnalyticCoherence:
    def test_single_thread_no_coherence(self):
        assert coherence_misses_per_instr(0.5, 0.1, 1) == 0.0

    def test_rate_proportional_to_shared_writes(self):
        a = coherence_misses_per_instr(0.5, 0.01, 4)
        b = coherence_misses_per_instr(0.5, 0.02, 4)
        assert b == pytest.approx(2 * a)

    def test_validation(self):
        with pytest.raises(ValueError):
            coherence_misses_per_instr(0.5, 1.5, 4)

    def test_cross_chip_costlier(self):
        one = coherence_stall_cycles_per_instr(1e-4, span_chips=1)
        two = coherence_stall_cycles_per_instr(1e-4, span_chips=2)
        assert two > one
        assert one == pytest.approx(1e-4 * SAME_CHIP_TRANSFER_CYCLES)

    def test_explicit_cross_fraction(self):
        all_cross = coherence_stall_cycles_per_instr(
            1e-4, span_chips=2, cross_chip_fraction=1.0
        )
        assert all_cross == pytest.approx(1e-4 * CROSS_CHIP_TRANSFER_CYCLES)


class TestEngineIntegration:
    def test_stencil_codes_record_coherence_traffic(self):
        from repro.counters.events import Event
        from repro.machine.configurations import get_config
        from repro.npb.suite import build_workload
        from repro.sim.engine import Engine

        r = Engine(get_config("ht_off_4_2")).run_single(
            build_workload("SP", "B")
        )
        assert r.collector.total()[Event.COHERENCE_TRANSFER] > 0

    def test_serial_run_has_no_coherence(self):
        from repro.counters.events import Event
        from repro.machine.configurations import get_config
        from repro.npb.suite import build_workload
        from repro.sim.engine import Engine

        r = Engine(get_config("serial")).run_single(
            build_workload("SP", "B")
        )
        assert r.collector.total()[Event.COHERENCE_TRANSFER] == 0
