"""Stacked machine parameters: the machine axis as contiguous arrays.

The batched resolver (:mod:`repro.sim.batch`) runs one damped fixed
point over a ``[n_machines, n_classes]`` batch instead of resolving each
machine's contention serially.  Its vectorized kernels need every
machine-level scalar the fixed point reads — clock, L2 geometry, DRAM
latency, and the full front-side-bus parameter set — as ``float64``
arrays indexed by *lane* (the machine axis).  :func:`pack_machines`
builds that layout once per batch; each array holds one field across all
lanes, in lane order, so a kernel touches ``n_machines`` contiguous
values instead of chasing ``n_machines`` parameter objects.

Packing is lossless and trivially reversible (``lane i`` column-reads
reproduce ``params[i]`` exactly); every value is copied bit-for-bit from
the source :class:`~repro.machine.params.MachineParams`, which keeps the
batched arithmetic byte-identical to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.machine.params import MachineParams

__all__ = ["PackedMachines", "pack_machines"]


@dataclass(frozen=True)
class PackedMachines:
    """Per-lane machine scalars as ``[n_lanes]`` float64 arrays.

    Field names mirror their scalar sources: ``clock_hz`` and the memory
    path come from :class:`~repro.machine.params.CoreParams` /
    :class:`~repro.machine.params.CacheParams`, the ``bus_*`` block from
    :class:`~repro.machine.params.BusParams`.
    """

    n_lanes: int
    clock_hz: np.ndarray
    #: Last-level cache geometry — the L2 itself on two-level machines
    #: (same source floats, so legacy lanes pack bit-identically).
    llc_line_bytes: np.ndarray
    llc_latency_cycles: np.ndarray
    memory_latency_cycles: np.ndarray
    bus_chip_read_bw: np.ndarray
    bus_chip_write_bw: np.ndarray
    bus_system_read_bw: np.ndarray
    bus_system_write_bw: np.ndarray
    bus_transaction_bytes: np.ndarray
    bus_prefetch_headroom: np.ndarray
    bus_prefetch_max_coverage: np.ndarray
    bus_snoop_per_agent: np.ndarray
    bus_snoop_cross_chip: np.ndarray


def pack_machines(params: Sequence[MachineParams]) -> PackedMachines:
    """Stack per-machine scalars into the batched-kernel layout."""
    if not params:
        raise ValueError("cannot pack an empty machine batch")

    def col(get) -> np.ndarray:
        return np.array([get(p) for p in params], dtype=np.float64)

    return PackedMachines(
        n_lanes=len(params),
        clock_hz=col(lambda p: p.core.clock_hz),
        llc_line_bytes=col(lambda p: p.llc.line_bytes),
        llc_latency_cycles=col(lambda p: p.llc.latency_cycles),
        memory_latency_cycles=col(lambda p: p.memory_latency_cycles),
        bus_chip_read_bw=col(lambda p: p.bus.chip_read_bw),
        bus_chip_write_bw=col(lambda p: p.bus.chip_write_bw),
        bus_system_read_bw=col(lambda p: p.bus.system_read_bw),
        bus_system_write_bw=col(lambda p: p.bus.system_write_bw),
        bus_transaction_bytes=col(lambda p: p.bus.transaction_bytes),
        bus_prefetch_headroom=col(lambda p: p.bus.prefetch_headroom),
        bus_prefetch_max_coverage=col(lambda p: p.bus.prefetch_max_coverage),
        bus_snoop_per_agent=col(lambda p: p.bus.snoop_overhead_per_agent),
        bus_snoop_cross_chip=col(lambda p: p.bus.snoop_overhead_cross_chip),
    )
