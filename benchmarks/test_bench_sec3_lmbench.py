"""Benchmark: regenerate the Section-3 LMbench characterization table."""

import pytest

from repro.experiments import sec3_lmbench

# Cheap enough (no NPB sweep) to ride in the CI smoke subset.
pytestmark = pytest.mark.smoke


def test_bench_sec3_lmbench(benchmark):
    result = benchmark(sec3_lmbench.run)
    print()
    print(sec3_lmbench.report(result))
    # The regenerated table must match the paper's numbers.
    assert result.plateaus["l1_ns"] == rel(1.43)
    assert result.plateaus["memory_ns"] == rel(136.9)
    assert result.bandwidth["read_1chip"].gbytes_per_second == rel(3.57)
    assert result.bandwidth["read_2chip"].gbytes_per_second == rel(4.43)


def rel(value, tol=0.06):
    import pytest

    return pytest.approx(value, rel=tol)
