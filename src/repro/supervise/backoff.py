"""Retry policy for transient failures: backoff, jitter, circuit breakers.

PR 4 taught the execution stack to *distinguish* transient failure
classes — a disk-cache read raising ``OSError``, a broken process pool
— from real task failures.  This module adds the policy layer on top:

* :class:`BackoffPolicy` — a bounded retry schedule with exponential
  backoff and **deterministic** jitter (hashed from the operation name
  and attempt index, not ``random``), so two runs of the same drill
  sleep the same amounts and stay reproducible;
* :class:`CircuitBreaker` — a consecutive-failure counter per transient
  class.  After ``threshold`` trips the breaker *opens* and the caller
  degrades structurally instead of retrying forever: the run cache
  drops its disk tier (memory-only), the parallel runner stops
  spawning pools (serial map).  A success while closed resets the
  count; an open breaker stays open for the life of the process (a
  campaign that lost its disk or its pool once keeps the cheap path).

Breakers live in a module registry keyed by class name so the run
cache, the parallel runner, and the manifest builder all see the same
state without threading objects through every call site.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "breaker",
    "breaker_states",
    "reset_breakers",
]


@dataclasses.dataclass(frozen=True)
class BackoffPolicy:
    """An exponential-backoff schedule: ``retries`` delays after the
    first attempt, each ``factor`` times the last, jittered by up to
    ``jitter`` of itself, capped at ``max_s``."""

    retries: int = 2
    base_s: float = 0.005
    factor: float = 2.0
    max_s: float = 0.1
    jitter: float = 0.25

    def delays(self, key: str) -> Iterator[float]:
        """The delay (seconds) before each retry of operation ``key``.

        Jitter is derived from SHA-256 of ``(key, attempt)`` — stable
        across processes and runs, unlike ``random.random()`` — so
        fault drills and the soak harness see identical schedules.
        """
        for attempt in range(self.retries):
            raw = min(self.base_s * (self.factor ** attempt), self.max_s)
            digest = hashlib.sha256(f"{key}\x1f{attempt}".encode()).digest()
            frac = digest[0] / 255.0  # deterministic in [0, 1]
            yield raw * (1.0 + self.jitter * frac)

    def run(
        self,
        fn: Callable[[], Any],
        transient: Tuple[type, ...],
        key: str,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Any:
        """Call ``fn``, retrying ``transient`` exceptions per schedule.

        The final attempt's exception propagates — the caller decides
        whether that means degrade, quarantine, or fail.
        """
        delays = list(self.delays(key))
        for attempt, delay in enumerate(delays):
            try:
                return fn()
            except transient as exc:
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(delay)
        return fn()


class CircuitBreaker:
    """Consecutive-failure counter with a one-way open state."""

    def __init__(self, name: str, threshold: int = 3):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.name = name
        self.threshold = threshold
        self.failures = 0       # consecutive, resets on success
        self.total_trips = 0    # lifetime, for the manifest
        self.open = False
        self.opened_reason: Optional[str] = None

    def record_failure(self, detail: str = "") -> bool:
        """Count one trip; returns True when the breaker just opened."""
        self.failures += 1
        self.total_trips += 1
        if not self.open and self.failures >= self.threshold:
            self.open = True
            self.opened_reason = (
                f"{self.failures} consecutive failures"
                + (f": {detail}" if detail else "")
            )
            return True
        return False

    def record_success(self) -> None:
        """A clean operation closes the window (unless already open)."""
        if not self.open:
            self.failures = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "open": self.open,
            "total_trips": self.total_trips,
            "threshold": self.threshold,
            "reason": self.opened_reason,
        }


# ----------------------------------------------------------------------
#: Transient-class registry: name -> breaker, shared process-wide.
_breakers: Dict[str, CircuitBreaker] = {}


def breaker(name: str, threshold: int = 3) -> CircuitBreaker:
    """The process-wide breaker for one transient class (created on
    first use; the first caller's threshold sticks)."""
    b = _breakers.get(name)
    if b is None:
        b = _breakers[name] = CircuitBreaker(name, threshold=threshold)
    return b


def breaker_states() -> Dict[str, Dict[str, Any]]:
    """Every breaker that tripped at least once (manifest surface)."""
    return {
        name: b.as_dict()
        for name, b in sorted(_breakers.items())
        if b.total_trips
    }


def reset_breakers() -> None:
    """Drop all breaker state (tests; a fresh campaign in-process)."""
    _breakers.clear()
