"""Operating-system model: logical CPUs, thread placement, CPU masking.

Reproduces the paper's methodology: the kernel only initializes the
contexts named by the configuration (``maxcpus=`` + masking) and the
default Linux scheduler distributes runnable threads across the remaining
logical CPUs, balancing across physical packages and cores before
doubling up on HT siblings.
"""

from repro.osmodel.process import ProgramSpec, ThreadPlacement, Placement
from repro.osmodel.scheduler import (
    Scheduler,
    LinuxDefaultScheduler,
    GangScheduler,
    PackedScheduler,
    SymbiosisScheduler,
    make_scheduler,
)

__all__ = [
    "ProgramSpec",
    "ThreadPlacement",
    "Placement",
    "Scheduler",
    "LinuxDefaultScheduler",
    "GangScheduler",
    "PackedScheduler",
    "SymbiosisScheduler",
    "make_scheduler",
]
