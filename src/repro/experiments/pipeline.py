"""Dependency-aware, fault-tolerant experiment pipeline (``run-all``).

The pipeline plans the selected registry entries into topological
*waves* over their declared data dependencies, executes each wave —
serially, or fanned out over :func:`repro.sim.parallel.parallel_map`
when the context allows more than one job — and collects, per
experiment, everything the run manifest needs:

* the structured result (fed to downstream experiments via
  ``ctx.results`` and to the CSV exporter),
* the rendered text artifact (byte-identical to the pre-pipeline
  per-module output),
* wall time, run-cache hit/miss deltas, and the fingerprints of the
  studies the driver touched.

**Failure isolation.**  One experiment raising does not abort the
matrix: the exception becomes a structured :class:`ExperimentFailure`
(type, message, traceback, wave, wall time), experiments that *require*
the failed one are marked skipped with their blockers, and every other
experiment still runs and emits its artifacts byte-identically to a
clean run.  A run with failures or skips reports
``exit_code == EXIT_PARTIAL_FAILURE``.

**Checkpoint/resume.**  Because every completed experiment persists its
``<id>.txt`` + ``<id>.json`` plus a manifest entry, a failed run is a
checkpoint: :func:`load_resume_state` reads those artifacts back and
``run_pipeline(..., resume=state)`` re-executes only the
failed/skipped/missing experiments, reusing completed results (via the
drivers' optional ``load_result`` rehydrators) for dependency
injection.  The resumed manifest is byte-identical to an unfailed run's
modulo timing/cache counters.

Artifacts: :func:`write_artifacts` emits ``<id>.txt`` + ``<id>.json``
per experiment plus a top-level ``manifest.json`` (timings, cache
counters, study fingerprints, failures, skips, pool-fallback reports,
package version) — the machine-readable surface an autotuner or a
service can drive.
"""

from __future__ import annotations

import json
import time
import traceback as _traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.context import RunContext, as_context
from repro.core.runcache import get_cache
from repro.experiments import registry
from repro.sim import batch as _batch
from repro.sim.parallel import (
    FallbackReport,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
)
from repro.testing import faults

__all__ = [
    "EXIT_PARTIAL_FAILURE",
    "ExperimentFailure",
    "ExperimentRecord",
    "PipelineResult",
    "ResumeError",
    "ResumeState",
    "load_resume_state",
    "run_pipeline",
    "write_artifacts",
]

#: manifest.json schema version, bumped on incompatible layout changes.
#: 2 = per-experiment ``status`` plus top-level ``status`` / ``failures``
#: / ``skipped`` / ``parallel_fallbacks`` sections.
#: 3 = machine-axis batching accounting: top-level ``batch_mode`` plus a
#: per-experiment ``batch`` section (``batched_machines`` /
#: ``scalar_fallbacks`` / ``deduplicated_machines``).
MANIFEST_SCHEMA = 3

#: ``run-all`` exit status when the matrix completed only partially
#: (distinct from 2 = bad arguments; completed artifacts are still
#: written and resumable).
EXIT_PARTIAL_FAILURE = 3


@dataclass
class ExperimentRecord:
    """Everything the pipeline learned from one experiment run."""

    id: str
    result: Any
    text: str
    wall_time_s: float
    cache: Dict[str, Any] = field(default_factory=dict)
    study_fingerprints: List[str] = field(default_factory=list)
    #: Machine-axis batching counters (:class:`repro.sim.batch.BatchStats`).
    batch: Dict[str, int] = field(default_factory=dict)
    wave: int = 0
    #: Pre-rendered ``<id>.json`` payload, set for records reused from a
    #: previous run (whose ``result`` may be unrehydratable).  When
    #: None, :func:`write_artifacts` renders the payload from ``result``.
    payload: Optional[Dict[str, Any]] = None


@dataclass
class ExperimentFailure:
    """A per-experiment exception, contained instead of propagated."""

    id: str
    wave: int
    error_type: str
    message: str
    traceback: str
    wall_time_s: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "wave": self.wave,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "wall_time_s": round(self.wall_time_s, 4),
        }


class ResumeError(RuntimeError):
    """``--resume`` was requested but there is nothing usable to resume."""


@dataclass
class ResumeState:
    """Artifacts recovered from a previous (possibly partial) run."""

    out_dir: Path
    manifest: Dict[str, Any]
    #: experiment id -> {"meta": manifest entry, "text": <id>.txt
    #: contents, "payload": parsed <id>.json}.
    completed: Dict[str, Dict[str, Any]] = field(default_factory=dict)


@dataclass
class PipelineResult:
    """Ordered records plus failures/skips and the manifest."""

    records: Dict[str, ExperimentRecord] = field(default_factory=dict)
    failures: Dict[str, ExperimentFailure] = field(default_factory=dict)
    #: skipped experiment id -> the failed/skipped ids blocking it.
    skipped: Dict[str, List[str]] = field(default_factory=dict)
    #: Pool-degradation events surfaced by :func:`parallel_map`.
    fallbacks: List[FallbackReport] = field(default_factory=list)
    #: Ids reused from a previous run instead of re-executed.
    resumed: List[str] = field(default_factory=list)
    #: Ids actually executed this run.
    executed: List[str] = field(default_factory=list)
    manifest: Dict[str, Any] = field(default_factory=dict)

    def result(self, experiment_id: str) -> Any:
        return self.records[experiment_id].result

    @property
    def ok(self) -> bool:
        """True when every selected experiment completed."""
        return not self.failures and not self.skipped

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else EXIT_PARTIAL_FAILURE


def _execute(
    entry: registry.ExperimentEntry, ctx: RunContext, wave: int
) -> Union[ExperimentRecord, ExperimentFailure]:
    """Run one experiment, measuring wall time and cache activity.

    Exceptions from the driver (or its renderer) are contained into an
    :class:`ExperimentFailure` so one bad experiment cannot take down
    the rest of the wave — on either the serial or the pool path.
    """
    before = get_cache().stats.snapshot()
    ctx.touched_fingerprints(reset=True)
    _batch.take_stats()  # drop counters left over from a previous entry
    start = time.perf_counter()
    try:
        faults.maybe_fail_experiment(entry.id)
        result = entry.run(ctx)
        text = entry.render_text(result)
    except Exception as exc:
        return ExperimentFailure(
            id=entry.id,
            wave=wave,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=_traceback.format_exc(),
            wall_time_s=time.perf_counter() - start,
        )
    wall = time.perf_counter() - start
    return ExperimentRecord(
        id=entry.id,
        result=result,
        text=text,
        wall_time_s=wall,
        cache=get_cache().stats.since(before).as_dict(),
        study_fingerprints=ctx.touched_fingerprints(),
        batch=_batch.take_stats().as_dict(),
        wave=wave,
    )


def _worker_init() -> None:
    """Pool-worker setup: the pipeline is already the fan-out level, so
    sweeps inside a worker must not spawn nested pools."""
    set_default_jobs(1)


def _pipeline_task(
    task: Tuple[str, RunContext, int]
) -> Union[ExperimentRecord, ExperimentFailure]:
    """Parallel worker: configure the process, run, measure (picklable)."""
    entry_id, ctx, wave = task
    ctx.apply_runtime_config()
    return _execute(registry.get(entry_id), ctx, wave)


def run_pipeline(
    ctx: Optional[RunContext] = None,
    only: Optional[Sequence[str]] = None,
    skip: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    resume: Optional[ResumeState] = None,
) -> PipelineResult:
    """Run the selected experiments in dependency order.

    Within a wave, experiments are independent; when the context's
    ``jobs`` allows, they fan out over the process pool (each worker
    running its internal sweeps serially), otherwise they run in-process
    and share the context's memoized studies directly.  Results land in
    ``ctx.results`` as they complete, so later waves consume them.

    A failing experiment is recorded, its (selected) dependents are
    skipped with their blockers, and the remaining waves continue.  With
    ``resume``, experiments already completed in a previous run are
    reused from their artifacts instead of re-executed.
    """
    ctx = as_context(ctx)
    ctx.apply_runtime_config()
    entries = registry.select(only=only, skip=skip)
    waves = registry.execution_waves(entries)
    selected = {e.id for e in entries}
    n_jobs = resolve_jobs(ctx.jobs)

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    out = PipelineResult()
    for wave_index, wave in enumerate(waves):
        to_run: List[registry.ExperimentEntry] = []
        for entry in wave:
            blockers = sorted(
                dep for dep in entry.requires
                if dep in selected
                and (dep in out.failures or dep in out.skipped)
            )
            if blockers:
                out.skipped[entry.id] = blockers
                note(f"skipped {entry.id} "
                     f"(blocked by {', '.join(blockers)})")
                continue
            if resume is not None and entry.id in resume.completed:
                record = _record_from_resume(entry, resume, wave_index)
                if record.result is not None:
                    ctx.results[record.id] = record.result
                out.records[record.id] = record
                out.resumed.append(record.id)
                note(f"resumed {record.id} (reused previous artifacts)")
                continue
            to_run.append(entry)

        if n_jobs > 1 and len(to_run) > 1:
            tasks = [
                (e.id, ctx.spawn(jobs=1), wave_index) for e in to_run
            ]
            outcomes = parallel_map(
                _pipeline_task, tasks, jobs=n_jobs,
                initializer=_worker_init,
                on_fallback=out.fallbacks.append,
            )
        else:
            outcomes = [_execute(e, ctx, wave_index) for e in to_run]

        for outcome in outcomes:
            out.executed.append(outcome.id)
            if isinstance(outcome, ExperimentFailure):
                out.failures[outcome.id] = outcome
                note(f"FAILED {outcome.id} "
                     f"({outcome.error_type}: {outcome.message})")
                continue
            ctx.results[outcome.id] = outcome.result
            out.records[outcome.id] = outcome
            note(
                f"ran {outcome.id} "
                f"({outcome.wall_time_s:.2f}s, "
                f"cache {outcome.cache.get('hits', 0)} hits / "
                f"{outcome.cache.get('misses', 0)} misses)"
            )

    # Records in registry order, regardless of wave packing.
    out.records = {
        e.id: out.records[e.id] for e in entries if e.id in out.records
    }
    out.manifest = _build_manifest(ctx, out, n_jobs)
    return out


def _record_from_resume(
    entry: registry.ExperimentEntry,
    resume: ResumeState,
    wave_index: int,
) -> ExperimentRecord:
    """Rebuild a completed experiment's record from its artifacts.

    The text and JSON payload are reused verbatim (so re-written
    artifacts stay byte-identical); the in-memory result object comes
    back through the driver's ``load_result`` rehydrator when it has
    one, enabling dependency injection into re-running dependents.
    """
    stored = resume.completed[entry.id]
    meta, payload = stored["meta"], stored["payload"]
    try:
        result = entry.load_result(payload)
    except Exception:
        # A rehydrator bug must not kill the resume; dependents fall
        # back to recomputing through the run cache.
        result = None
    return ExperimentRecord(
        id=entry.id,
        result=result,
        text=stored["text"],
        wall_time_s=float(meta.get("wall_time_s", 0.0)),
        cache=dict(meta.get("cache", {})),
        study_fingerprints=list(meta.get("study_fingerprints", [])),
        batch=dict(meta.get("batch", {})),
        wave=wave_index,
        payload=payload,
    )


def load_resume_state(out_dir: Path) -> ResumeState:
    """Recover the completed portion of a previous run from ``out_dir``.

    An experiment counts as completed when the manifest marks it ``ok``
    *and* both of its artifact files are present and parseable — a
    missing or torn artifact simply re-runs that experiment.  A missing
    or unreadable manifest raises :class:`ResumeError`.
    """
    out_dir = Path(out_dir)
    manifest_path = out_dir / "manifest.json"
    if not manifest_path.exists():
        raise ResumeError(
            f"nothing to resume: no manifest at {manifest_path}"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ResumeError(
            f"cannot resume from unreadable manifest {manifest_path}: {exc}"
        ) from None
    if not isinstance(manifest, dict) or "experiments" not in manifest:
        raise ResumeError(
            f"cannot resume: {manifest_path} is not a run manifest"
        )

    state = ResumeState(out_dir=out_dir, manifest=manifest)
    for exp_id, meta in manifest["experiments"].items():
        # Schema-1 manifests predate per-experiment status: every entry
        # they list completed (failures aborted the whole run then).
        if meta.get("status", "ok") != "ok":
            continue
        text_path = out_dir / f"{exp_id}.txt"
        json_path = out_dir / f"{exp_id}.json"
        try:
            text = text_path.read_text()
            payload = json.loads(json_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        state.completed[exp_id] = {
            "meta": meta, "text": text, "payload": payload
        }
    return state


def _build_manifest(
    ctx: RunContext,
    out: PipelineResult,
    n_jobs: int,
) -> Dict[str, Any]:
    """The top-level manifest.json payload."""
    import repro

    cache = get_cache()
    experiments: Dict[str, Any] = {}
    for rec in out.records.values():
        entry = registry.get(rec.id)
        experiments[rec.id] = {
            "paper_artifact": entry.paper_artifact,
            "description": entry.description,
            "tags": sorted(entry.tags),
            "requires": list(entry.requires),
            "status": "ok",
            "wave": rec.wave,
            "wall_time_s": round(rec.wall_time_s, 4),
            "cache": rec.cache,
            "batch": rec.batch,
            "study_fingerprints": rec.study_fingerprints,
            "artifacts": {
                "text": f"{rec.id}.txt",
                "json": f"{rec.id}.json",
            },
        }
    pc = ctx.problem_class
    return {
        "schema": MANIFEST_SCHEMA,
        "status": "complete" if out.ok else "partial",
        "package_version": repro.__version__,
        "problem_class": pc if isinstance(pc, str) else pc.value,
        "scheduler": ctx.scheduler,
        "jobs": n_jobs,
        "batch_mode": _batch.get_mode(),
        "cache": {
            "enabled": cache.enabled,
            "disk_dir": str(cache.disk_dir) if cache.disk_dir else None,
            "totals": cache.stats.as_dict(),
        },
        "failures": {
            exp_id: failure.as_dict()
            for exp_id, failure in sorted(out.failures.items())
        },
        "skipped": {
            exp_id: {"blocked_by": blockers}
            for exp_id, blockers in sorted(out.skipped.items())
        },
        "parallel_fallbacks": [r.as_dict() for r in out.fallbacks],
        "total_wall_time_s": round(
            sum(r.wall_time_s for r in out.records.values()), 4
        ),
        "experiments": experiments,
    }


def write_artifacts(
    pipeline: PipelineResult,
    out_dir: Path,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Path]:
    """Write ``<id>.txt`` + ``<id>.json`` per record and manifest.json.

    The text files are byte-identical to what the per-module ``report``
    functions produced before the pipeline existed; the JSON files add
    the machine-readable mirror of each result.  Failed or skipped
    experiments contribute no artifact files — only their manifest
    entries — so a later ``--resume`` can tell them apart from
    completed work.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    def emit(path: Path, content: str) -> None:
        path.write_text(content)
        written.append(path)
        if progress is not None:
            progress(f"wrote {path}")

    for rec in pipeline.records.values():
        entry = registry.get(rec.id)
        payload = (
            rec.payload if rec.payload is not None
            else entry.json_payload(rec.result)
        )
        emit(out_dir / f"{rec.id}.txt", rec.text)
        emit(
            out_dir / f"{rec.id}.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
    emit(
        out_dir / "manifest.json",
        json.dumps(pipeline.manifest, indent=2, sort_keys=True) + "\n",
    )
    return written
