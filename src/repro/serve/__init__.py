"""Simulation-as-a-service: the ``repro serve`` daemon.

An HTTP/JSON front end (stdlib ``http.server``, no new dependencies)
over an asynchronous, dedup-aware job scheduler:

* submissions are content-addressed — identical jobs in flight coalesce
  onto one engine execution whose result fans out to every waiter;
* warm jobs are answered straight from the content-addressed run cache
  without ever entering the worker pool;
* every job runs under the supervision machinery (cooperative
  cancellation, per-job wall-time budgets) and every state transition
  can be journaled to a crash-safe ``jobs.wal.jsonl`` for resumable
  restarts.

See ``docs/SERVING.md`` for the API reference and operations notes.
"""

from repro.serve.app import ServeApp, serve_forever
from repro.serve.runner import JobRunner
from repro.serve.schema import (
    JOB_KINDS,
    JobSpec,
    JobSpecError,
    job_key,
    parse_job,
)
from repro.serve.scheduler import DrainReport, Scheduler, SchedulerClosed
from repro.serve.store import (
    JOBS_JOURNAL_NAME,
    Job,
    JobJournal,
    JobStore,
    JobsJournalState,
    TERMINAL_STATES,
    load_jobs_journal,
)

__all__ = [
    "JOB_KINDS",
    "JOBS_JOURNAL_NAME",
    "DrainReport",
    "Job",
    "JobJournal",
    "JobRunner",
    "JobSpec",
    "JobSpecError",
    "JobStore",
    "JobsJournalState",
    "Scheduler",
    "SchedulerClosed",
    "ServeApp",
    "TERMINAL_STATES",
    "job_key",
    "load_jobs_journal",
    "parse_job",
    "serve_forever",
]
