"""Benchmarks: regenerate the extension studies (beyond the paper)."""

from repro.core.study import Study
from repro.experiments import (
    class_scaling,
    efficiency_study,
    energy_study,
    omp_overheads,
    sensitivity_study,
    tuning_study,
    validation,
)


def test_bench_validation(benchmark):
    result = benchmark.pedantic(
        lambda: validation.run(benchmarks=["CG", "SP", "EP"], samples=12000),
        rounds=2, iterations=1,
    )
    print()
    print(validation.report(result))
    assert result.max_l1_error < 0.12


def test_bench_omp_overheads(benchmark):
    result = benchmark(omp_overheads.run)
    print()
    print(omp_overheads.report(result))
    us = result.microseconds("ht_on_8_2")
    assert us["parallel"] > result.microseconds("ht_on_2_1")["parallel"]


def test_bench_tuning_study(benchmark):
    result = benchmark.pedantic(
        lambda: tuning_study.run(benchmarks=("LU", "SP"),
                                 pairs=(("CG", "CG"),)),
        rounds=2, iterations=1,
    )
    print()
    print(tuning_study.report(result))
    assert all(r.regret < 0.05 for r in result.placement_rows)


def test_bench_energy_study(benchmark):
    result = benchmark.pedantic(
        lambda: energy_study.run(Study("B")), rounds=2, iterations=1
    )
    print()
    print(energy_study.report(result))
    assert result.best_edp_config() == "ht_on_4_1"


def test_bench_efficiency_study(benchmark):
    result = benchmark.pedantic(
        lambda: efficiency_study.run(Study("B")), rounds=2, iterations=1
    )
    print()
    print(efficiency_study.report(result))
    assert result.best("per_chip") == "ht_on_4_1"


def test_bench_class_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: class_scaling.run(classes=("W", "B")), rounds=2, iterations=1
    )
    print()
    print(class_scaling.report(result))
    assert result.ht8_slowdown["W"] < result.ht8_slowdown["B"]


def test_bench_nextgen(benchmark):
    from repro.experiments import nextgen

    result = benchmark.pedantic(
        lambda: nextgen.run(benchmarks=["CG", "SP", "EP"]),
        rounds=2, iterations=1,
    )
    print()
    print(nextgen.report(result))
    # The paper's SP exception survives the shared-L2 generation.
    assert all("SP" in result.ht8_winners[v] for v in result.variants)


def test_bench_sensitivity(benchmark):
    result = benchmark.pedantic(
        lambda: sensitivity_study.run(), rounds=1, iterations=1
    )
    print()
    print(sensitivity_study.report(result))
    # The Table-2 ranking must be robust to every perturbation.
    assert result.f2.fragile_parameters() == []
