"""Tests for interval-sampled metric timelines."""

import pytest

from repro.counters.timeline import Timeline, TimelineSample
from repro.machine.configurations import get_config
from repro.npb.suite import build_workload
from repro.sim.engine import Engine


def sample(pid=0, t0=0.0, t1=1.0, phase="p", instr=100.0, cpi=2.0, util=0.5):
    return TimelineSample(
        program_id=pid, t_start=t0, t_end=t1, phase_name=phase,
        instructions=instr, cpi=cpi, bus_utilization=util,
    )


class TestTimelineContainer:
    def test_add_and_query(self):
        t = Timeline()
        t.add(sample(t0=0.0, t1=2.0, phase="alpha"))
        t.add(sample(t0=2.0, t1=3.0, phase="beta"))
        assert t.end_time == 3.0
        assert t.phase_at(0, 1.0) == "alpha"
        assert t.phase_at(0, 2.5) == "beta"
        assert t.phase_at(0, 9.0) is None

    def test_invalid_interval(self):
        t = Timeline()
        with pytest.raises(ValueError):
            t.add(sample(t0=2.0, t1=1.0))

    def test_sample_derived(self):
        s = sample(t0=1.0, t1=3.0, cpi=4.0)
        assert s.duration == 2.0
        assert s.ipc == 0.25

    def test_utilization_series_length(self):
        t = Timeline()
        t.add(sample(t0=0.0, t1=10.0, util=0.9))
        series = t.utilization_series(n_buckets=20)
        assert len(series) == 20
        assert all(u == 0.9 for u in series)

    def test_empty_render(self):
        assert "empty" in Timeline().render()


class TestEngineTimeline:
    @pytest.fixture(scope="class")
    def run(self):
        return Engine(get_config("ht_on_8_2")).run_pair(
            build_workload("CG", "B"), build_workload("FT", "B")
        )

    def test_both_programs_sampled(self, run):
        pids = {s.program_id for s in run.timeline.samples}
        assert pids == {0, 1}

    def test_end_time_matches_runtime(self, run):
        assert run.timeline.end_time == pytest.approx(
            run.runtime_seconds, rel=1e-6
        )

    def test_phases_appear_in_order(self, run):
        cg_phases = [
            s.phase_name for s in run.timeline.for_program(0)
        ]
        # First CG activity is the serial setup, last is the axpy phase.
        assert cg_phases[0] == "makea"
        assert cg_phases[-1] == "axpy_updates"

    def test_instructions_sum_to_workload(self, run):
        cg = build_workload("CG", "B")
        total = sum(
            s.instructions for s in run.timeline.for_program(0)
        )
        assert total == pytest.approx(cg.total_instructions, rel=1e-6)

    def test_render_swimlane(self, run):
        text = run.timeline.render(width=40)
        assert "P0 |" in text and "P1 |" in text
        assert "bus|" in text

    def test_single_program_timeline(self):
        r = Engine(get_config("serial")).run_single(
            build_workload("EP", "B")
        )
        assert len(r.timeline.samples) == 1
        assert r.timeline.samples[0].phase_name == "generate"
