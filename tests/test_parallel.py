"""Tests for the process-pool sweep runner."""

import os

import pytest

from repro.sim import parallel
from repro.sim.parallel import (
    get_default_jobs,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"task {x}")


@pytest.fixture(autouse=True)
def reset_default_jobs():
    set_default_jobs(None)
    yield
    set_default_jobs(None)


class TestJobResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        assert get_default_jobs() == 1

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "4")
        assert get_default_jobs() == 4

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "4")
        set_default_jobs(2)
        assert get_default_jobs() == 2

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "many")
        assert get_default_jobs() == 1

    def test_resolve_clamps_to_host(self):
        assert resolve_jobs(10_000) <= (os.cpu_count() or 1)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            set_default_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_pool_path_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [5], jobs=4) == [25]

    def test_unpicklable_callable_falls_back_to_serial(self):
        # Lambdas cannot cross a process boundary; the map must still
        # return correct results via the serial fallback.
        assert parallel_map(lambda x: x + 1, [1, 2, 3], jobs=2) == [2, 3, 4]

    def test_task_exceptions_propagate(self):
        with pytest.raises(ValueError, match="task"):
            parallel_map(_boom, [1, 2], jobs=1)
        with pytest.raises(ValueError, match="task"):
            parallel_map(_boom, [1, 2], jobs=2)
