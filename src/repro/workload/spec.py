"""Declarative workload descriptions: the :class:`WorkloadSpec` layer.

PR 7 made the *machine* half of the simulation declarative; this module
does the same for the workload half.  A :class:`WorkloadSpec` is a
schema-validated, JSON/TOML-loadable, content-fingerprinted description
of a benchmark's phase composition — per-phase work volumes, memory
access mixtures (working-set sizes, strides, reuse windows), branch
behaviour, and the OpenMP construct of each phase — which builds the
:class:`~repro.trace.phase.Workload` the engine consumes.

The schema serializes every :class:`~repro.trace.phase.Phase` field.
Two spellings differ from the dataclasses on purpose:

* ``openmp`` replaces the ``parallel`` bool — a phase is either an
  OpenMP ``"parallel"`` region or ``"serial"`` master-only code, and the
  spec file says which construct it is;
* each ``access_mix`` entry is a ``{"kind": ..., "weight": ...}`` table
  whose remaining keys are the fields of the named pattern class
  (``streaming``, ``random``, ``pointer_chase``, ``stencil``).

Derived workloads use *sparse inheritance*: a spec with a ``base`` key
starts from the named base spec's canonical form, then applies a
``scale`` factor and/or per-phase field overrides.  Inheritance is
flattened at load time — :meth:`WorkloadSpec.to_dict` always emits the
complete, self-contained form, so fingerprints never depend on how a
workload was spelled.

Spec files live under ``workloads/`` at the repository root (see
:mod:`repro.workload.registry`); ``docs/WORKLOADS.md`` documents the
schema and the ~30-line recipe for adding a workload.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.trace.patterns import (
    AccessMix,
    AccessPattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StreamingPattern,
)
from repro.trace.phase import Phase, Workload

__all__ = [
    "WORKLOAD_SCHEMA_VERSION",
    "WorkloadSpec",
    "WorkloadSpecError",
    "load_workload_spec",
]

#: Bumped on incompatible changes to the on-disk workload-spec layout.
WORKLOAD_SCHEMA_VERSION = 1

#: ``kind`` tag of an access-mix component -> pattern dataclass.
_PATTERN_KINDS: Dict[str, type] = {
    "streaming": StreamingPattern,
    "random": RandomPattern,
    "pointer_chase": PointerChasePattern,
    "stencil": StencilPattern,
}
_KIND_OF_PATTERN = {cls: kind for kind, cls in _PATTERN_KINDS.items()}

#: Leaf annotations the schema knows how to check (the dataclasses use
#: ``from __future__ import annotations``, so field types are strings).
_LEAF_TYPES: Dict[str, type] = {
    "int": int,
    "float": float,
    "bool": bool,
    "str": str,
}

#: Spec spelling of :attr:`Phase.parallel` (the OpenMP construct).
_OPENMP_VALUES = ("parallel", "serial")

_TOP_LEVEL_KEYS = (
    "schema",
    "name",
    "description",
    "kind",
    "memory_bound_score",
    "base",
    "workload",
)
_WORKLOAD_KEYS = ("name", "problem_class", "scale", "phases")


class WorkloadSpecError(ValueError):
    """A workload spec failed to load or validate.

    Carries the dotted path of the offending field so CLI error lines
    point at the exact key (``workload.phases[2].access_mix[0].kind``).
    """

    def __init__(self, message: str, path: Sequence[str] = ()):
        self.path = tuple(path)
        prefix = ".".join(self.path)
        super().__init__(f"{prefix}: {message}" if prefix else message)


def _check_leaf(value: Any, annotation: type, path: Sequence[str]) -> Any:
    """Validate a leaf value against its dataclass field type.

    Integer-valued floats are coerced to ``float`` (JSON and TOML both
    allow ``8`` where a model parameter is ``8.0``); the conversion is
    exact for every value the schema can hold, so the canonical form —
    and therefore the fingerprint — does not depend on the spelling.
    """
    if annotation is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise WorkloadSpecError(f"expected a number, got {value!r}", path)
        return float(value)
    if annotation is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise WorkloadSpecError(f"expected an integer, got {value!r}", path)
        return value
    if annotation is bool:
        if not isinstance(value, bool):
            raise WorkloadSpecError(f"expected a boolean, got {value!r}", path)
        return value
    if annotation is str:
        if not isinstance(value, str):
            raise WorkloadSpecError(f"expected a string, got {value!r}", path)
        return value
    raise WorkloadSpecError(f"unsupported field type {annotation!r}", path)


def _require_table(value: Any, path: Sequence[str]) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise WorkloadSpecError(f"expected a table, got {value!r}", path)
    return value


# ---------------------------------------------------------------------------
# Access-mix components
# ---------------------------------------------------------------------------

def _pattern_to_dict(weight: float, pattern: AccessPattern) -> Dict[str, Any]:
    kind = _KIND_OF_PATTERN.get(type(pattern))
    if kind is None:
        raise WorkloadSpecError(
            f"unserializable access pattern {type(pattern).__name__}"
        )
    out: Dict[str, Any] = {"kind": kind, "weight": float(weight)}
    for f in dataclasses.fields(pattern):
        value = getattr(pattern, f.name)
        out[f.name] = float(value) if f.type == "float" else value
    return out


def _pattern_from_dict(
    entry: Any, path: Sequence[str]
) -> Tuple[float, AccessPattern]:
    table = _require_table(entry, path)
    kind = table.get("kind")
    if kind not in _PATTERN_KINDS:
        raise WorkloadSpecError(
            f"unknown access pattern kind {kind!r} "
            f"(valid: {sorted(_PATTERN_KINDS)})",
            tuple(path) + ("kind",),
        )
    if "weight" not in table:
        raise WorkloadSpecError("missing required field", tuple(path) + ("weight",))
    weight = _check_leaf(table["weight"], float, tuple(path) + ("weight",))
    cls = _PATTERN_KINDS[kind]
    fields = {f.name: f for f in dataclasses.fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, value in table.items():
        if key in ("kind", "weight"):
            continue
        if key not in fields:
            raise WorkloadSpecError(
                f"unknown field for {kind!r} pattern "
                f"(valid: {sorted(fields)})",
                tuple(path) + (key,),
            )
        kwargs[key] = _check_leaf(
            value, _LEAF_TYPES.get(fields[key].type, object),
            tuple(path) + (key,),
        )
    if "footprint_bytes" not in kwargs:
        raise WorkloadSpecError(
            "missing required field", tuple(path) + ("footprint_bytes",)
        )
    try:
        return weight, cls(**kwargs)
    except ValueError as exc:
        raise WorkloadSpecError(str(exc), path) from None


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------

_PHASE_FIELDS: Dict[str, dataclasses.Field] = {
    f.name: f for f in dataclasses.fields(Phase)
}
_PHASE_REQUIRED = tuple(
    f.name
    for f in dataclasses.fields(Phase)
    if f.default is dataclasses.MISSING
    and f.default_factory is dataclasses.MISSING
)


def _phase_to_dict(phase: Phase) -> Dict[str, Any]:
    """Serialize one phase to its complete spec table."""
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(Phase):
        if f.name == "parallel":
            out["openmp"] = "parallel" if phase.parallel else "serial"
        elif f.name == "access_mix":
            out["access_mix"] = [
                _pattern_to_dict(w, p) for w, p in phase.access_mix.components
            ]
        else:
            value = getattr(phase, f.name)
            out[f.name] = float(value) if f.type == "float" else value
    return out


def _phase_from_dict(
    data: Mapping[str, Any],
    path: Sequence[str],
    base: Optional[Mapping[str, Any]] = None,
) -> Phase:
    """Build a phase from a (possibly sparse) spec table.

    ``base`` is the complete serialized table of the phase being
    overridden (derived specs); without it, omitted optional fields take
    the :class:`Phase` defaults.
    """
    table = _require_table(data, path)
    merged: Dict[str, Any] = dict(base or {})
    merged.update(table)
    kwargs: Dict[str, Any] = {}
    for key, value in merged.items():
        if key == "openmp":
            if value not in _OPENMP_VALUES:
                raise WorkloadSpecError(
                    f"expected one of {_OPENMP_VALUES}, got {value!r}",
                    tuple(path) + ("openmp",),
                )
            kwargs["parallel"] = value == "parallel"
        elif key == "access_mix":
            if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
                raise WorkloadSpecError(
                    f"expected a list of pattern tables, got {value!r}",
                    tuple(path) + ("access_mix",),
                )
            components = tuple(
                _pattern_from_dict(entry, tuple(path) + (f"access_mix[{i}]",))
                for i, entry in enumerate(value)
            )
            try:
                kwargs["access_mix"] = AccessMix(components=components)
            except ValueError as exc:
                raise WorkloadSpecError(
                    str(exc), tuple(path) + ("access_mix",)
                ) from None
        elif key == "parallel":
            raise WorkloadSpecError(
                "use openmp: \"parallel\"|\"serial\" instead of the "
                "parallel bool",
                tuple(path) + ("parallel",),
            )
        elif key in _PHASE_FIELDS:
            kwargs[key] = _check_leaf(
                value,
                _LEAF_TYPES.get(_PHASE_FIELDS[key].type, object),
                tuple(path) + (key,),
            )
        else:
            valid = sorted(
                set(_PHASE_FIELDS) - {"parallel", "access_mix"}
                | {"openmp", "access_mix"}
            )
            raise WorkloadSpecError(
                f"unknown phase field (valid: {valid})", tuple(path) + (key,)
            )
    missing = [name for name in _PHASE_REQUIRED if name not in kwargs]
    if missing:
        raise WorkloadSpecError(
            f"missing required phase fields: {missing}", path
        )
    try:
        return Phase(**kwargs)
    except ValueError as exc:
        raise WorkloadSpecError(str(exc), path) from None


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """A named, validated, fingerprintable workload description.

    ``workload`` is the fully built :class:`~repro.trace.phase.Workload`;
    the metadata mirrors :class:`~repro.npb.common.BenchmarkInfo` so NAS
    benchmarks and file-defined workloads describe themselves uniformly.
    ``source`` records the spec file a registry entry came from (``None``
    for code-defined producers) and is excluded from equality.
    """

    name: str
    workload: Workload
    description: str = ""
    kind: str = "kernel"
    memory_bound_score: float = 0.5
    source: Optional[Path] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Any],
        source: Optional[Union[str, Path]] = None,
        resolve: Optional[Callable[[str], "WorkloadSpec"]] = None,
    ) -> "WorkloadSpec":
        """Validate a spec tree and build the workload it describes.

        ``resolve`` maps a ``base`` name to its spec (the registry
        provides it); a spec using ``base`` outside a registry context is
        an error, so standalone trees stay self-contained.
        """
        table = _require_table(data, ())
        unknown = sorted(set(table) - set(_TOP_LEVEL_KEYS))
        if unknown:
            raise WorkloadSpecError(
                f"unknown top-level keys {unknown} "
                f"(valid: {sorted(_TOP_LEVEL_KEYS)})"
            )
        schema = table.get("schema")
        if schema != WORKLOAD_SCHEMA_VERSION:
            raise WorkloadSpecError(
                f"unsupported schema version {schema!r} "
                f"(this build reads version {WORKLOAD_SCHEMA_VERSION})",
                ("schema",),
            )
        name = table.get("name")
        if not isinstance(name, str) or not name:
            raise WorkloadSpecError(
                f"expected a non-empty string, got {name!r}", ("name",)
            )

        base_spec: Optional[WorkloadSpec] = None
        if "base" in table:
            base_name = _check_leaf(table["base"], str, ("base",))
            if resolve is None:
                raise WorkloadSpecError(
                    "base inheritance needs a registry context "
                    "(load this spec through repro.workload.registry)",
                    ("base",),
                )
            base_spec = resolve(base_name)

        description = _check_leaf(
            table.get(
                "description",
                base_spec.description if base_spec else "",
            ),
            str,
            ("description",),
        )
        kind = _check_leaf(
            table.get("kind", base_spec.kind if base_spec else "kernel"),
            str,
            ("kind",),
        )
        if not kind:
            raise WorkloadSpecError("expected a non-empty string", ("kind",))
        score = _check_leaf(
            table.get(
                "memory_bound_score",
                base_spec.memory_bound_score if base_spec else 0.5,
            ),
            float,
            ("memory_bound_score",),
        )
        if not 0.0 <= score <= 1.0:
            raise WorkloadSpecError(
                f"must be within [0, 1], got {score!r}",
                ("memory_bound_score",),
            )

        wtree = table.get("workload")
        if base_spec is None:
            if wtree is None:
                raise WorkloadSpecError("missing required table", ("workload",))
            workload = cls._build_root_workload(name, wtree)
        else:
            workload = cls._build_derived_workload(name, wtree, base_spec)

        spec = cls(
            name=name,
            workload=workload,
            description=description,
            kind=kind,
            memory_bound_score=score,
            source=Path(source) if source is not None else None,
        )
        return spec

    @staticmethod
    def _build_root_workload(spec_name: str, wtree: Any) -> Workload:
        table = _require_table(wtree, ("workload",))
        unknown = sorted(set(table) - {"name", "problem_class", "phases"})
        if unknown:
            raise WorkloadSpecError(
                f"unknown keys {unknown} (valid: ['name', 'phases', "
                f"'problem_class']; 'scale' needs a base)",
                ("workload",),
            )
        wname = _check_leaf(table.get("name", spec_name), str, ("workload", "name"))
        pclass = _check_leaf(
            table.get("problem_class", "B"), str, ("workload", "problem_class")
        )
        phases_node = table.get("phases")
        if not isinstance(phases_node, Sequence) or isinstance(
            phases_node, (str, bytes)
        ):
            raise WorkloadSpecError(
                f"expected a list of phase tables, got {phases_node!r}",
                ("workload", "phases"),
            )
        phases = tuple(
            _phase_from_dict(entry, ("workload", f"phases[{i}]"))
            for i, entry in enumerate(phases_node)
        )
        try:
            return Workload(name=wname, problem_class=pclass, phases=phases)
        except ValueError as exc:
            raise WorkloadSpecError(str(exc), ("workload",)) from None

    @staticmethod
    def _build_derived_workload(
        spec_name: str, wtree: Any, base_spec: "WorkloadSpec"
    ) -> Workload:
        """Sparse inheritance: start from the base's canonical form."""
        table = _require_table(wtree, ("workload",)) if wtree is not None else {}
        unknown = sorted(set(table) - set(_WORKLOAD_KEYS))
        if unknown:
            raise WorkloadSpecError(
                f"unknown keys {unknown} (valid: {sorted(_WORKLOAD_KEYS)})",
                ("workload",),
            )
        base_tree = base_spec.to_dict()["workload"]
        wname = _check_leaf(
            table.get("name", spec_name), str, ("workload", "name")
        )
        pclass = _check_leaf(
            table.get("problem_class", base_tree["problem_class"]),
            str,
            ("workload", "problem_class"),
        )
        scale = _check_leaf(
            table.get("scale", 1.0), float, ("workload", "scale")
        )
        if scale <= 0:
            raise WorkloadSpecError(
                f"must be positive, got {scale!r}", ("workload", "scale")
            )

        overrides = table.get("phases", {})
        overrides = _require_table(overrides, ("workload", "phases"))
        base_phases = {p["name"]: p for p in base_tree["phases"]}
        unknown_phases = sorted(set(overrides) - set(base_phases))
        if unknown_phases:
            raise WorkloadSpecError(
                f"unknown phases {unknown_phases} "
                f"(base {base_spec.name!r} has: {sorted(base_phases)})",
                ("workload", "phases"),
            )
        phases = []
        for entry in base_tree["phases"]:
            pname = entry["name"]
            override = dict(overrides.get(pname, {}))
            override.setdefault("name", pname)
            phase = _phase_from_dict(
                override, ("workload", f"phases[{pname}]"), base=entry
            )
            if scale != 1.0:
                phase = phase.with_scale(scale)
            phases.append(phase)
        try:
            return Workload(
                name=wname, problem_class=pclass, phases=tuple(phases)
            )
        except ValueError as exc:
            raise WorkloadSpecError(str(exc), ("workload",)) from None

    # ------------------------------------------------------------------
    @classmethod
    def from_workload(
        cls,
        workload: Workload,
        name: Optional[str] = None,
        description: str = "",
        kind: str = "kernel",
        memory_bound_score: float = 0.5,
        source: Optional[Union[str, Path]] = None,
    ) -> "WorkloadSpec":
        """Capture a built workload as a spec (the producer path).

        The workload is serialized to its spec tree and re-loaded through
        :meth:`from_dict`, so code-defined producers exercise exactly the
        schema a file would — a producer cannot build a workload its own
        spec form would reject.
        """
        tree = {
            "schema": WORKLOAD_SCHEMA_VERSION,
            "name": name if name is not None else workload.name,
            "description": description,
            "kind": kind,
            "memory_bound_score": memory_bound_score,
            "workload": {
                "name": workload.name,
                "problem_class": workload.problem_class,
                "phases": [_phase_to_dict(p) for p in workload.phases],
            },
        }
        return cls.from_dict(tree, source=source)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical, complete spec tree (inheritance flattened)."""
        return {
            "schema": WORKLOAD_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "memory_bound_score": float(self.memory_bound_score),
            "workload": {
                "name": self.workload.name,
                "problem_class": self.workload.problem_class,
                "phases": [_phase_to_dict(p) for p in self.workload.phases],
            },
        }

    @property
    def fingerprint(self) -> str:
        """sha256 over the canonical JSON form (spelling-independent)."""
        canon = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    @property
    def short_fingerprint(self) -> str:
        return self.fingerprint[:12]

    def build(self) -> Workload:
        """The engine-facing workload (already built and validated)."""
        return self.workload

    def save(self, path: Union[str, Path]) -> Path:
        """Write the canonical JSON form (pretty-printed, sorted keys)."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, str]:
        """One-line listing fields for ``repro workloads``."""
        w = self.workload
        return {
            "kind": self.kind,
            "class": w.problem_class,
            "phases": str(len(w.phases)),
            "instr": f"{w.total_instructions:.1e}",
            "mem": f"{w.mem_intensity:.2f}",
            "ws": human_bytes(w.working_set_bytes),
        }


def human_bytes(n: float) -> str:
    """Format a byte count for listings (``537.1MB``)."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0:
            return f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}TB"


def load_workload_spec(
    path: Union[str, Path],
    resolve: Optional[Callable[[str], WorkloadSpec]] = None,
) -> WorkloadSpec:
    """Load and validate a spec file (``.json`` or ``.toml``)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise WorkloadSpecError(f"cannot read {path}: {exc}") from None
    elif suffix == ".toml":
        try:
            import tomllib
        except ImportError:
            raise WorkloadSpecError(
                f"cannot read {path}: TOML specs need Python >= 3.11 "
                f"(tomllib); use the JSON form instead"
            ) from None
        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError) as exc:
            raise WorkloadSpecError(f"cannot read {path}: {exc}") from None
    else:
        raise WorkloadSpecError(
            f"unsupported spec suffix {path.suffix!r} "
            f"(expected .json or .toml)"
        )
    try:
        return WorkloadSpec.from_dict(data, source=path, resolve=resolve)
    except WorkloadSpecError as exc:
        raise WorkloadSpecError(f"{path}: {exc}") from None
