"""Hardware performance counter model (the VTune substitute).

:mod:`repro.counters.events` defines the event taxonomy (mirroring the
Pentium-4/Xeon PMU events the paper collects); :mod:`repro.counters.collector`
accumulates per-context event counts during simulation;
:mod:`repro.counters.metrics` derives the exact quantities the paper's
Figures 2 and 4 plot (miss rates, % stalled, branch prediction rate,
% prefetching bus accesses, CPI, normalized DTLB misses).
"""

from repro.counters.events import Event
from repro.counters.collector import CounterSet, Collector
from repro.counters.metrics import DerivedMetrics, derive_metrics

__all__ = [
    "Event",
    "CounterSet",
    "Collector",
    "DerivedMetrics",
    "derive_metrics",
]
