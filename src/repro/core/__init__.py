"""Public facade: the characterization methodology as a library.

Typical use::

    from repro.core import RunContext, Study

    study = Study(problem_class="B")
    result = study.run("CG", "ht_on_4_1")      # one benchmark, one config
    speedup = study.speedup("CG", "ht_on_4_1") # vs the serial baseline
    pair = study.run_pair("CG", "FT", "ht_on_8_2")
    table = study.speedup_table(["CG", "FT"])  # across all configurations

    ctx = RunContext(problem_class="B", jobs=4)  # one campaign context
    from repro.experiments import registry
    result = registry.get("fig3").run(ctx)       # any experiment driver
"""

from repro.core.context import RunContext, as_context
from repro.core.study import Study

__all__ = ["RunContext", "Study", "as_context"]
