"""Analytic memory-hierarchy evaluation for one phase on one context.

Computes trace-cache, L1-D, L2, ITLB and DTLB rates from a phase's access
mixture and code characteristics, applying the HT capacity-sharing model
of :mod:`repro.trace.patterns`.

Rate conventions (matching how VTune/the paper report them):

* ``tc_miss_rate`` — trace-cache misses per trace-cache *deliver* event.
* ``l1_miss_rate`` — L1-D misses per L1-D access (memory reference).
* ``l2_miss_rate`` — L2 misses per L2 *access* (i.e. per L1 miss): the
  "local" miss rate, which is what the paper's Figure 2 plots.
* ``itlb_miss_rate`` — ITLB misses per ITLB lookup.
* ``dtlb_misses_per_instr`` — absolute DTLB load+store misses per uop
  (the paper reports totals normalized to the serial case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.params import MachineParams
from repro.trace.patterns import (
    effective_capacity,
    loop_thrash_miss_rate,
    sharing_discount,
)
from repro.trace.phase import Phase

#: Average uops delivered per trace-cache line (NetBurst packs 6/line).
UOPS_PER_TRACE_LINE = 6.0
#: ITLB lookups per uop that bypass the trace cache entirely (page
#: crossings, interrupts).
_ITLB_BASE_LOOKUPS_PER_UOP = 1.0 / 512.0
#: Additional ITLB pressure per extra active context in the system: OS
#: timer ticks, migrations and kernel entries touch new code pages more
#: often as the machine gets busier (the paper observes ITLB misses rising
#: with architecture complexity).
_ITLB_OS_NOISE = 0.012


@dataclass(frozen=True)
class LevelRates:
    """Resolved per-context hierarchy rates for one phase."""

    tc_accesses_per_instr: float
    tc_miss_rate: float
    l1_accesses_per_instr: float
    l1_miss_rate: float
    l2_accesses_per_instr: float
    l2_miss_rate: float
    l2_misses_per_instr: float
    itlb_accesses_per_instr: float
    itlb_miss_rate: float
    dtlb_accesses_per_instr: float
    dtlb_miss_rate: float
    dtlb_misses_per_instr: float

    @property
    def tc_misses_per_instr(self) -> float:
        return self.tc_accesses_per_instr * self.tc_miss_rate

    @property
    def l1_misses_per_instr(self) -> float:
        return self.l1_accesses_per_instr * self.l1_miss_rate

    @property
    def itlb_misses_per_instr(self) -> float:
        return self.itlb_accesses_per_instr * self.itlb_miss_rate


class HierarchyModel:
    """Evaluates phase miss rates against one machine's hierarchy."""

    def __init__(self, params: MachineParams):
        self.params = params

    def evaluate(
        self,
        phase: Phase,
        n_threads: int,
        core_sharers: int,
        same_data: bool,
        same_code: bool,
        total_visible_contexts: int,
        co_phase: Optional[Phase] = None,
        l2_sharers: Optional[int] = None,
        l2_same_data: Optional[bool] = None,
    ) -> LevelRates:
        """Resolve hierarchy rates for one context executing ``phase``.

        Args:
            phase: the phase this context executes.
            n_threads: OpenMP team size of the owning program (divides
                partitioned footprints).
            core_sharers: active hardware contexts on this context's core
                (1, or 2 with a busy HT sibling).
            same_data: the HT sibling (if any) belongs to the same program
                *instance* (team) — enables constructive data sharing.
            same_code: the sibling executes the same binary (true for a
                second copy of the same benchmark too) — enables
                constructive trace-cache/ITLB sharing.
            total_visible_contexts: logical CPUs the OS initialized (OS
                noise on the ITLB grows with machine complexity).
            co_phase: phase run by a different-program sibling, used to
                model destructive code-footprint interference.
            l2_sharers: contexts sharing the L2 when its scope differs
                from the core (chip-shared L2 on next-generation parts);
                defaults to ``core_sharers``.
            l2_same_data: whether all L2 sharers belong to one program
                instance; defaults to ``same_data``.
        """
        p = self.params
        mix = phase.access_mix

        # --- data caches ---------------------------------------------
        l1_miss = mix.miss_rate(
            p.l1d.size_bytes,
            p.l1d.line_bytes,
            n_threads=n_threads,
            sharers=core_sharers,
            same_program=same_data,
        )
        eff_l2_sharers = l2_sharers if l2_sharers is not None else core_sharers
        eff_l2_same = l2_same_data if l2_same_data is not None else same_data
        l2_global = mix.miss_rate(
            p.l2.size_bytes,
            p.l2.line_bytes,
            n_threads=n_threads,
            sharers=eff_l2_sharers,
            same_program=eff_l2_same,
        )
        # Inclusion + larger L2 lines keep the global L2 miss rate at or
        # below the L1 rate; the local rate is their ratio.
        l2_global = min(l2_global, l1_miss)
        l2_local = l2_global / l1_miss if l1_miss > 1e-12 else 0.0

        l1_acc_per_instr = phase.mem_ops_per_instr
        l2_acc_per_instr = l1_acc_per_instr * l1_miss
        l2_miss_per_instr = l1_acc_per_instr * l2_global

        # --- trace cache ----------------------------------------------
        code_fp = phase.code_footprint_uops
        if same_code and core_sharers > 1:
            # Siblings execute the same loops: the footprint is fully
            # shared and one sibling's fill serves the other.
            tc_capacity = p.trace_cache.size_bytes
            tc_discount = sharing_discount(core_sharers, 1.0)
        elif core_sharers > 1:
            co_fp = co_phase.code_footprint_uops if co_phase is not None else code_fp
            share = code_fp / (code_fp + co_fp) if (code_fp + co_fp) else 0.5
            tc_capacity = p.trace_cache.size_bytes * share
            tc_discount = 1.0
        else:
            tc_capacity = p.trace_cache.size_bytes
            tc_discount = 1.0
        tc_miss = loop_thrash_miss_rate(code_fp, tc_capacity, width=0.35) * tc_discount
        tc_acc_per_instr = 1.0 / UOPS_PER_TRACE_LINE

        # --- ITLB -------------------------------------------------------
        # Front-end translations happen when the trace cache misses (build
        # mode fetches from L2) plus a small baseline.
        itlb_acc_per_instr = (
            tc_acc_per_instr * tc_miss + _ITLB_BASE_LOOKUPS_PER_UOP
        )
        itlb_capacity = effective_capacity(
            p.itlb.reach_bytes,
            core_sharers,
            1.0 if same_code else 0.0,
        )
        itlb_base = loop_thrash_miss_rate(
            phase.code_footprint_bytes, itlb_capacity, width=0.30
        )
        os_noise = _ITLB_OS_NOISE * max(total_visible_contexts - 1, 0)
        itlb_miss = min(1.0, itlb_base + os_noise)

        # --- DTLB -------------------------------------------------------
        dtlb_miss = mix.miss_rate(
            p.dtlb.reach_bytes,
            p.dtlb.page_bytes,
            n_threads=n_threads,
            sharers=core_sharers,
            same_program=same_data,
        )
        dtlb_acc_per_instr = phase.mem_ops_per_instr

        return LevelRates(
            tc_accesses_per_instr=tc_acc_per_instr,
            tc_miss_rate=tc_miss,
            l1_accesses_per_instr=l1_acc_per_instr,
            l1_miss_rate=l1_miss,
            l2_accesses_per_instr=l2_acc_per_instr,
            l2_miss_rate=l2_local,
            l2_misses_per_instr=l2_miss_per_instr,
            itlb_accesses_per_instr=itlb_acc_per_instr,
            itlb_miss_rate=itlb_miss,
            dtlb_accesses_per_instr=dtlb_acc_per_instr,
            dtlb_miss_rate=dtlb_miss,
            dtlb_misses_per_instr=dtlb_acc_per_instr * dtlb_miss,
        )
