"""Reuse-distance analysis of concrete address streams.

The analytic pattern models (``AccessMix.miss_rate``) are closed forms;
this module provides the measurement-side counterpart: compute the LRU
reuse-distance histogram of any address stream and derive its exact
miss-rate curve (miss rate of every fully-associative LRU cache size at
once, via Mattson's stack algorithm).  Tests validate the pattern
closed forms against these measured curves.

The stack algorithm here is the classic O(N·D) list-based treap-free
variant — fine for the sampled streams (10^4-10^5) this package uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class ReuseProfile:
    """Measured reuse-distance distribution of a stream.

    Attributes:
        distances: per-access LRU stack distance in *lines* (-1 for cold
            misses / first touches).
        line_bytes: line granularity of the analysis.
    """

    distances: np.ndarray
    line_bytes: int

    @property
    def n_accesses(self) -> int:
        return len(self.distances)

    @property
    def cold_fraction(self) -> float:
        """Fraction of accesses that are first touches."""
        if self.n_accesses == 0:
            return 0.0
        return float(np.count_nonzero(self.distances < 0)) / self.n_accesses

    def miss_rate(self, capacity_bytes: float) -> float:
        """Exact miss rate of a fully-associative LRU cache.

        An access misses iff its stack distance (in lines) is >= the
        cache's line capacity, or it is a cold miss.
        """
        if self.n_accesses == 0:
            return 0.0
        capacity_lines = max(int(capacity_bytes // self.line_bytes), 0)
        misses = np.count_nonzero(
            (self.distances < 0) | (self.distances >= capacity_lines)
        )
        return misses / self.n_accesses

    def miss_rate_curve(
        self, capacities_bytes: Sequence[float]
    ) -> List[float]:
        """Miss rates for several capacities (one histogram pass each)."""
        return [self.miss_rate(c) for c in capacities_bytes]

    def histogram(self, bins: Sequence[int]) -> Dict[str, float]:
        """Fraction of accesses per stack-distance bin (lines).

        ``bins`` are upper edges; a final ``inf``/cold bucket is added.
        """
        out: Dict[str, float] = {}
        if self.n_accesses == 0:
            return out
        d = self.distances
        prev = 0
        for edge in bins:
            frac = np.count_nonzero((d >= prev) & (d < edge))
            out[f"[{prev},{edge})"] = frac / self.n_accesses
            prev = edge
        out[f"[{prev},inf)"] = (
            np.count_nonzero(d >= prev) / self.n_accesses
        )
        out["cold"] = self.cold_fraction
        return out


def reuse_profile(
    addresses: np.ndarray, line_bytes: int = 64
) -> ReuseProfile:
    """Compute LRU stack distances of a stream (Mattson's algorithm).

    The stack distance of an access is the number of *distinct* lines
    touched since the previous access to the same line; first touches
    get distance -1.
    """
    lines = np.asarray(addresses, dtype=np.int64) // line_bytes
    stack: List[int] = []  # most recent first
    seen: set = set()
    distances = np.empty(len(lines), dtype=np.int64)
    for i, line in enumerate(lines):
        line = int(line)
        if line in seen:
            # Find current depth by scanning (list-based Mattson).
            depth = stack.index(line)
            distances[i] = depth
            del stack[depth]
        else:
            distances[i] = -1
            seen.add(line)
        stack.insert(0, line)
    return ReuseProfile(distances=distances, line_bytes=line_bytes)


def miss_rate_curve_from_mix(
    mix,
    capacities_bytes: Sequence[float],
    line_bytes: int = 64,
    samples: int = 20000,
    seed: int = 7,
) -> List[float]:
    """Measured miss-rate curve of an :class:`AccessMix` sample.

    Draws a sampled stream from the mix, computes its reuse profile and
    evaluates the curve — the measurement the analytic
    ``mix.miss_rate(c, line)`` approximates in closed form.
    """
    from repro.trace.sampling import sample_mix

    stream = sample_mix(
        mix, samples, samples, np.random.default_rng(seed)
    )
    profile = reuse_profile(stream.addresses, line_bytes)
    return profile.miss_rate_curve(capacities_bytes)
