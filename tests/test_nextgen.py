"""Tests for the shared-L2 what-if study and the L2 scope plumbing."""

import pytest

from repro.experiments import nextgen
from repro.machine.configurations import get_config
from repro.npb.suite import build_workload
from repro.sim.engine import Engine


class TestSharedL2Params:
    def test_scope_and_size(self):
        p = nextgen.shared_l2_params(4)
        assert p.l2_scope == "chip"
        assert p.l2.size_bytes == 4 * 1024 * 1024

    def test_stock_is_private(self):
        from repro.machine.params import paxville_params

        assert paxville_params().l2_scope == "core"


class TestL2ScopeEffects:
    def test_pooled_l2_helps_capacity_bound_code(self):
        """With one thread per core, a chip-shared 2 MB L2 gives each
        thread the whole pool: SP's reuse window fits earlier."""
        sp = build_workload("SP", "B")
        private = Engine(get_config("ht_off_2_1")).run_single(sp)
        shared = Engine(
            get_config("ht_off_2_1"), params=nextgen.shared_l2_params(2)
        ).run_single(sp)
        assert shared.runtime_seconds < private.runtime_seconds

    def test_cross_core_contention_appears_in_multiprogram(self):
        """Two different programs on one chip now fight for one L2: the
        memory-bound victim's L2 miss rate rises versus private L2s."""
        cg = build_workload("CG", "B")
        ft = build_workload("FT", "B")
        private = Engine(get_config("ht_off_2_1")).run_pair(cg, ft)
        shared = Engine(
            get_config("ht_off_2_1"), params=nextgen.shared_l2_params(2)
        ).run_pair(cg, ft)
        m_priv = private.program(0).metrics
        m_shared = shared.program(0).metrics
        # Same pool size as the sum of privates, but now contended.
        assert m_shared.l2_miss_rate != m_priv.l2_miss_rate


class TestNextGenStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return nextgen.run(benchmarks=["CG", "SP", "EP", "MG"])

    def test_covers_variants(self, result):
        assert result.variants == [
            "private_1MB_per_core", "shared_2MB_per_chip",
            "shared_4MB_per_chip",
        ]

    def test_pooling_never_hurts_averages(self, result):
        assert (
            result.avg_4_2["shared_2MB_per_chip"]
            >= result.avg_4_2["private_1MB_per_core"] * 0.99
        )
        assert (
            result.avg_4_2["shared_4MB_per_chip"]
            >= result.avg_4_2["shared_2MB_per_chip"] * 0.99
        )

    def test_sp_finding_survives_the_generation(self, result):
        """The paper's group-4 exception is not a private-L2 artifact."""
        for v in result.variants:
            assert "SP" in result.ht8_winners[v]

    def test_report_renders(self, result):
        text = nextgen.report(result)
        assert "private vs chip-shared L2" in text
