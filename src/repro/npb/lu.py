"""LU — SSOR solver with wavefront (pipelined) parallelism.

NPB-LU applies symmetric successive over-relaxation to a 7-point
operator: the lower/upper triangular sweeps carry wavefront dependencies
that the OpenMP version pipelines with point-to-point flag
synchronization.  The pipeline fill/drain and per-plane flag waits make
LU the highest-synchronization, highest-imbalance member of the paper's
set, with moderate, moderately prefetchable memory traffic.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.npb.common import (
    BYTES_PER_UOP,
    FLOP_TO_UOPS,
    BenchmarkInfo,
    ProblemClass,
    check_class,
)
from repro.trace.patterns import AccessMix, RandomPattern, StencilPattern
from repro.trace.phase import Phase, Workload

INFO = BenchmarkInfo(
    name="LU",
    kind="application",
    description="SSOR with pipelined wavefronts, sync heavy",
    memory_bound_score=0.55,
)

#: (grid edge, iterations)
_DIMS: Dict[ProblemClass, Tuple[int, int]] = {
    ProblemClass.S: (12, 50),
    ProblemClass.W: (33, 300),
    ProblemClass.A: (64, 250),
    ProblemClass.B: (102, 250),
    ProblemClass.C: (162, 250),
}

_FLOPS_PER_POINT = 1200.0
_BYTES_PER_POINT = 160.0


def dims(problem_class: ProblemClass) -> Tuple[int, int]:
    """(grid edge, iterations)."""
    return check_class(problem_class, _DIMS)


def total_flops(problem_class: ProblemClass) -> float:
    n, niter = dims(problem_class)
    return float(n) ** 3 * niter * _FLOPS_PER_POINT


def build(problem_class: ProblemClass = ProblemClass.B) -> Workload:
    """Build the LU workload model."""
    n, niter = dims(problem_class)
    points = float(n) ** 3
    grid_bytes = points * _BYTES_PER_POINT
    plane_bytes = float(n) * float(n) * _BYTES_PER_POINT
    instr = total_flops(problem_class) * FLOP_TO_UOPS
    code_uops = 11500.0  # whole SSOR iteration (rhs + both sweeps)

    scratch = RandomPattern(
        footprint_bytes=10240.0,  # 5x5 block factors per point, scalars
        partitioned=False,
        shared_fraction=0.0,
    )

    def stencil(whf):
        return StencilPattern(
            footprint_bytes=grid_bytes,
            partitioned=True,
            shared_fraction=0.20,
            reuse_window_bytes=2.0 * plane_bytes,
            stride_bytes=4,
            window_hit_fraction=whf,
            window_scales=False,
        )

    # One SSOR iteration: the rhs evaluation followed by the lower and
    # upper triangular wavefront sweeps.  The sweeps carry the pipelined
    # point-to-point synchronization (one flag wait per plane) and the
    # fill/drain imbalance; rhs is an ordinary balanced stencil pass.
    # Every phase carries the full per-iteration code footprint.
    common = dict(
        load_fraction=0.72,
        code_footprint_uops=code_uops,
        code_footprint_bytes=code_uops * BYTES_PER_UOP,
        branch_misp_intrinsic=0.006,
        branch_sites=800,
        parallel=True,
        iterations=niter,
        inner_trip_count=float(n),
        trip_divides=False,
        branch_history_sensitivity=0.25,
        mlp=3.0,
    )
    rhs = Phase(
        name="rhs",
        instructions=instr * 0.30,
        mem_ops_per_instr=0.50,
        access_mix=AccessMix.of((0.72, stencil(0.66)), (0.28, scratch)),
        branches_per_instr=0.055,
        ilp=1.45,
        imbalance=0.04,
        prefetchability=0.80,
        barriers=2,
        halo_bytes_per_iteration=1.0 * plane_bytes,
        **common,
    )
    lower = Phase(
        name="blts_lower",
        instructions=instr * 0.35,
        mem_ops_per_instr=0.47,
        access_mix=AccessMix.of((0.72, stencil(0.63)), (0.28, scratch)),
        branches_per_instr=0.065,
        ilp=1.30,
        imbalance=0.18,          # wavefront pipeline fill/drain
        prefetchability=0.62,
        barriers=int(n),         # per-plane flag waits
        halo_bytes_per_iteration=1.5 * plane_bytes,
        **common,
    )
    upper = Phase(
        name="buts_upper",
        instructions=instr * 0.35,
        mem_ops_per_instr=0.47,
        access_mix=AccessMix.of((0.72, stencil(0.63)), (0.28, scratch)),
        branches_per_instr=0.065,
        ilp=1.30,
        imbalance=0.18,
        prefetchability=0.62,
        barriers=int(n),
        halo_bytes_per_iteration=1.5 * plane_bytes,
        **common,
    )
    return Workload(
        name="LU", problem_class=problem_class.value,
        phases=(rhs, lower, upper),
    )


def spec(problem_class: ProblemClass = ProblemClass.B):
    """Capture :func:`build` as a declarative workload spec.

    The spec serializes every phase through the
    :mod:`repro.workload.spec` schema and rebuilds it, so this module
    cannot produce a workload its own spec form would reject; the
    rebuilt phases compare equal to :func:`build`'s.
    """
    from repro.workload.spec import WorkloadSpec

    return WorkloadSpec.from_workload(
        build(problem_class),
        description=INFO.description,
        kind=INFO.kind,
        memory_bound_score=INFO.memory_bound_score,
    )
