"""Benchmark: regenerate Table 2 (average speedup per architecture)."""

from repro.core.study import Study
from repro.experiments import table2_avg_speedup
from repro.machine.configurations import Architecture


def test_bench_table2_avg_speedup(benchmark):
    def regenerate():
        return table2_avg_speedup.run(Study("B"))

    result = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    print()
    print(table2_avg_speedup.report(result))
    avgs = result.averages
    top_two = sorted(avgs, key=lambda a: avgs[a], reverse=True)[:2]
    assert set(top_two) == {
        Architecture.CMP_BASED_SMP,
        Architecture.CMT_BASED_SMP,
    }
    # Paper: HT on both chips costs ~6.7% on average.
    assert 0.01 < result.ht_on_8_2_slowdown < 0.15
