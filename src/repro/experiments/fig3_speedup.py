"""Figure 3: single-program speedup over serial, per benchmark per
configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.analysis.figures import speedup_figure
from repro.analysis.report import format_table
from repro.analysis.result import ExperimentResult
from repro.analysis.speedup import SpeedupTable
from repro.core.context import RunContext, as_context
from repro.core.study import Study


@dataclass
class Fig3Result(ExperimentResult):
    table: SpeedupTable
    config_order: List[str]


def run(
    ctx: Union[RunContext, Study, None] = None,
    benchmarks: Optional[Sequence[str]] = None,
    configs: Optional[Sequence[str]] = None,
) -> Fig3Result:
    """Compute per-benchmark speedups for every configuration."""
    ctx = as_context(ctx)
    study = ctx.study()
    cfgs = list(configs or study.paper_configs())
    table = study.speedup_table(
        benchmarks=benchmarks or ctx.workload_names(), configs=cfgs
    )
    return Fig3Result(table=table, config_order=cfgs)


def load_result(payload: dict) -> Fig3Result:
    """Rehydrate from the ``fig3.json`` payload (resume support).

    ``table2`` consumes fig3's speedup table through the pipeline; on a
    resumed run the table comes back from the artifact instead of a
    re-simulation.
    """
    table = SpeedupTable()
    for bench, row in payload["table"]["values"].items():
        for config, speedup in row.items():
            table.set(bench, config, float(speedup))
    return Fig3Result(
        table=table, config_order=list(payload["config_order"])
    )


def report(result: Fig3Result) -> str:
    """Render the Figure-3 speedup series."""
    headers = ["benchmark"] + result.config_order
    rows = []
    for bench in result.table.benchmarks:
        rows.append(
            [bench] + [result.table.get(bench, c) for c in result.config_order]
        )
    rows.append(
        ["AVERAGE"]
        + [result.table.column_average(c) for c in result.config_order]
    )
    table = format_table(
        headers, rows, title="Figure 3: speedup of NAS OpenMP applications",
        float_fmt="%.2f",
    )
    chart = speedup_figure(
        result.table, result.config_order,
        title="Figure 3 (chart): speedup of NAS OpenMP applications",
    )
    return table + "\n\n" + chart


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
