"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for needle in ("fig2", "fig3", "table2", "fig4", "fig5",
                       "sec3-lmbench", "tuning", "efficiency"):
            assert needle in out
        # Tags are part of the listing now.
        assert "[paper" in out

    def test_speedup_query(self, capsys):
        assert main(["speedup", "ep", "ht_off_4_2"]) == 0
        out = capsys.readouterr().out
        assert "EP on ht_off_4_2" in out
        assert "x over serial" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "CMP-based SMP" in out

    def test_run_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "fig99" in err and "valid choices" in err
        assert "fig3" in err  # lists what *is* available

    def test_speedup_unknown_benchmark_exits_2(self, capsys):
        assert main(["speedup", "zz", "ht_off_4_2"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err and "CG" in err

    def test_speedup_unknown_config_exits_2(self, capsys):
        assert main(["speedup", "CG", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown configuration" in err and "ht_off_4_2" in err

    def test_speedup_unknown_class_exits_2(self, capsys):
        assert main(["speedup", "CG", "ht_off_4_2",
                     "--problem-class", "Z"]) == 2
        err = capsys.readouterr().err
        assert "unknown problem class" in err

    def test_run_all_unknown_only_token_exits_2(self, capsys, tmp_path):
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nonsense" in err

    def test_run_format_json(self, capsys):
        assert main(["run", "omp-overheads", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "omp-overheads"
        assert payload["paper_artifact"] == "(extensions)"
        assert payload["result"]["rows"]

    def test_run_all_only_writes_artifacts_and_manifest(
        self, tmp_path, capsys
    ):
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", "omp-overheads,sec3-lmbench"]) == 0
        capsys.readouterr()
        for name in ("omp-overheads", "sec3-lmbench"):
            assert (tmp_path / f"{name}.txt").read_text().strip()
            payload = json.loads((tmp_path / f"{name}.json").read_text())
            assert payload["experiment"] == name
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert set(manifest["experiments"]) == {
            "omp-overheads", "sec3-lmbench"
        }
        # Nothing outside the selection ran.
        assert not (tmp_path / "fig3.txt").exists()

    def test_run_all_skip(self, tmp_path, capsys):
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", "platform",
                     "--skip", "sec3-lmbench"]) == 0
        capsys.readouterr()
        assert (tmp_path / "omp-overheads.txt").exists()
        assert not (tmp_path / "sec3-lmbench.txt").exists()

    def test_run_all_text_matches_run(self, tmp_path, capsys):
        """The pipeline's text artifact is the driver's report verbatim."""
        assert main(["run", "omp-overheads"]) == 0
        direct = capsys.readouterr().out
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", "omp-overheads"]) == 0
        capsys.readouterr()
        assert (tmp_path / "omp-overheads.txt").read_text() == \
            direct.rstrip("\n")

    def test_csv_export_consumes_pipeline_results(self, tmp_path):
        from repro.cli import _export_csv
        from repro.core.context import RunContext
        from repro.experiments.pipeline import run_pipeline

        pipeline = run_pipeline(RunContext(), only=["fig2", "fig3"])
        _export_csv(tmp_path, pipeline)
        fig3 = (tmp_path / "fig3_speedup.csv").read_text()
        assert fig3.startswith("benchmark,")
        assert (tmp_path / "fig2_cpi.csv").exists()

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliFailurePaths:
    """run-all under injected failure: exit codes, manifest, --resume.

    Fault-plan isolation is handled by the autouse
    ``clean_runtime_switches`` fixture in tests/conftest.py.
    """

    ONLY = "sec3-lmbench,omp-overheads"

    def _failing_run(self, tmp_path, monkeypatch, spec, only=ONLY):
        monkeypatch.setenv("REPRO_FAULTS", spec)
        code = main(["run-all", "--out", str(tmp_path), "--only", only])
        monkeypatch.delenv("REPRO_FAULTS")
        return code

    def test_partial_failure_exits_3(self, tmp_path, monkeypatch, capsys):
        code = self._failing_run(
            tmp_path, monkeypatch, "experiment:omp-overheads"
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "completed partially" in err
        assert "1 failed (omp-overheads)" in err
        assert "--resume" in err

    def test_partial_manifest_contents(self, tmp_path, monkeypatch, capsys):
        self._failing_run(
            tmp_path, monkeypatch, "experiment:fig3",
            only="fig3,table2,sec3-lmbench",
        )
        capsys.readouterr()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["status"] == "partial"
        failure = manifest["failures"]["fig3"]
        assert failure["error_type"] == "InjectedFault"
        assert "Traceback" in failure["traceback"]
        assert manifest["skipped"]["table2"]["blocked_by"] == ["fig3"]
        # The independent experiment still completed and shipped.
        assert manifest["experiments"]["sec3-lmbench"]["status"] == "ok"
        assert (tmp_path / "sec3-lmbench.txt").exists()
        assert not (tmp_path / "fig3.txt").exists()

    def test_resume_happy_path(self, tmp_path, monkeypatch, capsys):
        assert self._failing_run(
            tmp_path, monkeypatch, "experiment:omp-overheads"
        ) == 3
        capsys.readouterr()
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "1 completed experiment(s) reused" in out
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["status"] == "complete"
        assert manifest["failures"] == {} and manifest["skipped"] == {}
        assert (tmp_path / "omp-overheads.txt").read_text().strip()

    def test_resume_nothing_to_do(self, tmp_path, capsys):
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY]) == 0
        capsys.readouterr()
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "nothing to resume" in out

    def test_malformed_faults_env_is_a_usage_error(
        self, tmp_path, monkeypatch, capsys
    ):
        # A typo in REPRO_FAULTS must exit 2 before anything runs, not
        # surface inside an experiment as a partial failure (exit 3).
        monkeypatch.setenv("REPRO_FAULTS", "bogus-token")
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown fault token" in err
        assert not (tmp_path / "manifest.json").exists()

    def test_resume_without_previous_run_exits_2(self, tmp_path, capsys):
        assert main(["run-all", "--out", str(tmp_path / "fresh"),
                     "--resume", "--only", self.ONLY]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nothing to resume" in err

    def test_csv_export_skipped_when_inputs_failed(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_FAULTS", "experiment:fig3")
        code = main(["run-all", "--out", str(tmp_path), "--csv",
                     "--only", "fig2,fig3,table2"])
        monkeypatch.delenv("REPRO_FAULTS")
        assert code == 3
        captured = capsys.readouterr()
        assert "skipping CSV export" in captured.err
        assert not (tmp_path / "fig3_speedup.csv").exists()


class TestSupervisionCli:
    """run-all under supervision: budgets, journaling, cancellation."""

    ONLY = "sec3-lmbench,omp-overheads"

    def test_timeout_flags_recorded_in_manifest(self, tmp_path, capsys):
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY,
                     "--timeout", "300", "--experiment-timeout", "60"]) == 0
        capsys.readouterr()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["supervision"]["budget"] == {
            "run_timeout_s": 300.0, "experiment_timeout_s": 60.0,
        }

    def test_unsupervised_run_records_null_budget(self, tmp_path, capsys):
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY]) == 0
        capsys.readouterr()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["supervision"] == {"budget": None, "breakers": {}}

    def test_nonpositive_timeout_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run-all", "--out", str(tmp_path),
                  "--only", self.ONLY, "--timeout", "0"])
        assert exc.value.code == 2
        assert "must be > 0 seconds" in capsys.readouterr().err

    def test_flags_beat_environment_per_slot(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro import supervise

        monkeypatch.setenv(supervise.TIMEOUT_ENV, "120")
        monkeypatch.setenv(supervise.EXPERIMENT_TIMEOUT_ENV, "10")
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY, "--timeout", "30"]) == 0
        capsys.readouterr()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        # --timeout overrode REPRO_TIMEOUT; the untouched slot kept the
        # environment's value.
        assert manifest["supervision"]["budget"] == {
            "run_timeout_s": 30.0, "experiment_timeout_s": 10.0,
        }

    def test_malformed_timeout_env_is_a_usage_error(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro import supervise

        monkeypatch.setenv(supervise.TIMEOUT_ENV, "soon")
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and supervise.TIMEOUT_ENV in err
        assert not (tmp_path / "manifest.json").exists()

    def test_journal_finalized_away_on_success(self, tmp_path, capsys):
        from repro.supervise import JOURNAL_NAME

        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY]) == 0
        capsys.readouterr()
        assert (tmp_path / "manifest.json").exists()
        assert not (tmp_path / JOURNAL_NAME).exists()

    def test_journal_disabled_by_env(self, tmp_path, monkeypatch, capsys):
        from repro import supervise

        opened = []
        orig = supervise.Journal.open

        def spy(*args, **kwargs):
            opened.append(kwargs.get("selected"))
            return orig(*args, **kwargs)

        monkeypatch.setattr(supervise.Journal, "open", spy)
        monkeypatch.setenv(supervise.JOURNAL_ENV, "0")
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY]) == 0
        assert opened == []
        monkeypatch.delenv(supervise.JOURNAL_ENV)
        assert main(["run-all", "--out", str(tmp_path / "journaled"),
                     "--only", self.ONLY]) == 0
        capsys.readouterr()
        assert opened == [["sec3-lmbench", "omp-overheads"]]

    def test_interrupt_exits_4_and_resume_completes(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments import omp_overheads

        real = omp_overheads.run

        def interrupted(ctx):
            raise KeyboardInterrupt

        monkeypatch.setattr(omp_overheads, "run", interrupted)
        code = main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY, "--jobs", "1"])
        assert code == 4
        err = capsys.readouterr().err
        assert "run-all cancelled" in err
        assert "keyboard interrupt" in err
        assert "--resume" in err
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["status"] == "cancelled"
        assert "omp-overheads" in manifest["cancelled"]
        # The cancelled run is resumable once the interruption passes.
        monkeypatch.setattr(omp_overheads, "run", real)
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", self.ONLY, "--jobs", "1",
                     "--resume"]) == 0
        capsys.readouterr()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["status"] == "complete"


class TestMachinesCli:
    def test_machines_lists_registry(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "paxville" in out
        # Fingerprint, key parameters and provenance per line.
        pax = next(
            line for line in out.splitlines()
            if line.startswith("paxville ")
        )
        assert "clock=2.8GHz" in pax and "l2=1MB private/core" in pax
        assert "built-in" in pax or "machines/" in pax

    def test_machines_marks_file_provenance(self, capsys):
        from repro.machine.registry import machines_dir

        if machines_dir() is None:  # pragma: no cover
            pytest.skip("no machines/ directory in this deployment")
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "nextgen-shared-l2" in out
        assert "nextgen-shared-l2.json" in out

    def test_unknown_machine_exits_2(self, capsys):
        assert main(["run", "fig3", "--machine", "vaporware"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "vaporware" in err and "valid choices" in err
        assert "paxville" in err

    def test_unreadable_spec_file_exits_2(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["speedup", "CG", "ht_off_4_2",
                     "--machine", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nope.json" in err

    def test_speedup_with_named_machine(self, capsys):
        assert main(["speedup", "EP", "ht_off_4_2",
                     "--machine", "paxville"]) == 0
        out = capsys.readouterr().out
        assert "EP on ht_off_4_2" in out

    def test_run_all_with_machine(self, tmp_path, capsys):
        assert main(["run-all", "--out", str(tmp_path),
                     "--only", "omp-overheads",
                     "--machine", "paxville"]) == 0
        capsys.readouterr()
        assert (tmp_path / "omp-overheads.txt").read_text().strip()


class TestMachinesDetailCli:
    def test_detail_renders_topology_tree_and_hierarchy(self, capsys):
        from repro.machine.registry import machines_dir

        if machines_dir() is None:  # pragma: no cover
            pytest.skip("no machines/ directory in this deployment")
        assert main(["machines", "broadwell-shared-l3"]) == 0
        out = capsys.readouterr().out
        assert "socket 0" in out and "socket 1" in out
        assert "chip 0" in out and "core 0: A0 A1" in out
        # Hierarchy table with all three levels and their scopes.
        assert "l1d" in out and "l2" in out and "l3" in out
        assert "chip" in out
        assert "8MB" in out

    def test_detail_shows_numa_tiers(self, capsys):
        from repro.machine.registry import machines_dir

        if machines_dir() is None:  # pragma: no cover
            pytest.skip("no machines/ directory in this deployment")
        assert main(["machines", "cascadelake-2s-numa"]) == 0
        out = capsys.readouterr().out
        assert "numa tiers" in out
        assert "1.74" in out and "0.62" in out

    def test_detail_shows_core_classes(self, capsys):
        from repro.machine.registry import machines_dir

        if machines_dir() is None:  # pragma: no cover
            pytest.skip("no machines/ directory in this deployment")
        assert main(["machines", "biglittle-demo"]) == 0
        out = capsys.readouterr().out
        assert "core classes:" in out and "little" in out
        assert "1.68GHz" in out  # 0.6 x 2.8 GHz on the little chip

    def test_unknown_name_exits_2_with_choices_and_suggestion(
        self, capsys
    ):
        assert main(["machines", "paxvile"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "valid choices" in err and "paxville" in err
        assert "did you mean 'paxville'?" in err

    def test_unknown_name_without_close_match_lists_choices(self, capsys):
        assert main(["machines", "zzz-no-such-machine"]) == 2
        err = capsys.readouterr().err
        assert "valid choices" in err
        assert "did you mean" not in err
