"""Tests for the NPB mini-kernel verification suite."""

import pytest

from repro.npb.verification import (
    VerificationCheck,
    format_report,
    verify_all,
)


@pytest.fixture(scope="module")
def report():
    return verify_all()


class TestVerification:
    def test_all_checks_pass(self, report):
        failing = [c for c in report.checks if not c.passed]
        assert not failing, f"failed: {failing}"
        assert report.successful

    def test_covers_seven_kernels(self, report):
        benches = {c.benchmark for c in report.checks}
        assert benches == {"CG", "MG", "FT", "EP", "IS", "SP", "LU"}

    def test_per_benchmark_lookup(self, report):
        cg = report.for_benchmark("CG")
        assert {c.quantity for c in cg} == {"residual_norm", "zeta"}

    def test_format_has_stamp(self, report):
        text = format_report(report)
        assert "VERIFICATION SUCCESSFUL" in text
        assert text.count("[OK ]") == len(report.checks)

    def test_failure_stamp(self):
        bad = verify_all()
        bad.checks.append(
            VerificationCheck("XX", "broken", 0.0, False, "synthetic")
        )
        text = format_report(bad)
        assert "VERIFICATION UNSUCCESSFUL" in text
        assert "[FAIL]" in text
