"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness behind the robustness test suite and the CI fault drill; it is
importable from production code (the hooks are no-ops unless a plan is
active) but never activates itself.
"""

from repro.testing.faults import (  # noqa: F401
    FaultPlan,
    InjectedFault,
    active_plan,
    injected_faults,
    parse_plan,
)

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "injected_faults",
    "parse_plan",
]
