"""Parameter sensitivity analysis: how robust are the conclusions?

A model-based reproduction owes its readers a robustness statement: if
a calibration constant is off by 20 %, do the paper's findings still
hold?  This module perturbs machine parameters one at a time, re-runs a
target metric, and reports elasticities (percent metric change per
percent parameter change) plus whether each *boolean finding* (e.g.
"only SP wins at HT on 2-8-2") survives the perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.study import Study
from repro.machine.params import MachineParams
from repro.machine.registry import default_params
from repro.machine.spec import SpecOverride

#: (display name, path to the field) for every scalar knob we perturb.
PERTURBABLE: List[Tuple[str, Tuple[str, ...]]] = [
    ("memory_latency_ns", ("memory_latency_ns",)),
    ("issue_width", ("core", "issue_width")),
    ("mlp", ("core", "mlp")),
    ("mlp_smt_share", ("core", "mlp_smt_share")),
    ("smt_partition_penalty", ("core", "smt_partition_penalty")),
    ("trace_cache_miss_penalty", ("core", "trace_cache_miss_penalty")),
    ("chip_read_bw", ("bus", "chip_read_bw")),
    ("system_read_bw", ("bus", "system_read_bw")),
    ("snoop_overhead_per_agent", ("bus", "snoop_overhead_per_agent")),
    ("snoop_overhead_cross_chip", ("bus", "snoop_overhead_cross_chip")),
    ("prefetch_max_coverage", ("bus", "prefetch_max_coverage")),
    ("mispredict_penalty_cycles", ("branch", "mispredict_penalty_cycles")),
]


def perturb_params(
    base: MachineParams, path: Tuple[str, ...], scale: float
) -> MachineParams:
    """Return params with the field at ``path`` multiplied by ``scale``.

    A thin wrapper over the spec layer's :class:`SpecOverride`, kept for
    its established signature; a typo'd path raises instead of silently
    perturbing nothing.
    """
    return SpecOverride.scaled(".".join(path), scale).apply_params(base)


@dataclass(frozen=True)
class SensitivityRow:
    """Effect of perturbing one parameter on one metric."""

    parameter: str
    scale: float
    metric_value: float
    baseline_value: float
    finding_holds: bool

    @property
    def metric_change(self) -> float:
        """Fractional metric change relative to the baseline."""
        if self.baseline_value == 0:
            return 0.0
        return self.metric_value / self.baseline_value - 1.0

    @property
    def elasticity(self) -> float:
        """Percent metric change per percent parameter change."""
        dp = self.scale - 1.0
        if dp == 0:
            return 0.0
        return self.metric_change / dp


@dataclass
class SensitivityResult:
    metric_name: str
    baseline: float
    rows: List[SensitivityRow] = field(default_factory=list)

    def fragile_parameters(self) -> List[str]:
        """Parameters whose perturbation breaks the boolean finding."""
        return sorted({
            r.parameter for r in self.rows if not r.finding_holds
        })

    def max_elasticity(self) -> Tuple[str, float]:
        r = max(self.rows, key=lambda x: abs(x.elasticity))
        return r.parameter, r.elasticity


#: One metric/finding pair to evaluate during a sweep.
@dataclass(frozen=True)
class SweepSpec:
    metric: Callable[[Study], float]
    finding: Callable[[Study], bool]
    metric_name: str


def _eval_perturbation(task) -> List[Tuple[float, bool]]:
    """Evaluate every spec on one perturbed study (parallel worker).

    Module-level so the process pool can pickle it; each worker builds
    the perturbed study itself and all specs share the same study —
    hence the same run-cache entries — within the task.
    """
    specs, problem_class, path, scale = task
    study = Study(
        problem_class,
        params=perturb_params(default_params(), path, scale),
    )
    return [(spec.metric(study), spec.finding(study)) for spec in specs]


def sweep_many(
    specs: Sequence[SweepSpec],
    scales: Sequence[float] = (0.8, 1.25),
    parameters: Optional[Sequence[Tuple[str, Tuple[str, ...]]]] = None,
    problem_class: str = "B",
    jobs: Optional[int] = None,
) -> List[SensitivityResult]:
    """Perturb each parameter once and evaluate *all* specs on it.

    Evaluating the findings together means each perturbed study is built
    (and simulated) once rather than once per finding; the perturbation
    grid optionally fans out over a process pool.

    When machine-axis batching is enabled (see :mod:`repro.sim.batch`),
    the whole perturbation grid runs as one tensor computation instead:
    the unperturbed study is evaluated first as the *recording lane*
    (capturing which runs each lane needs), then every perturbed
    machine's runs are prefetched through the batched engine and the
    metrics are evaluated in-process against the preloaded results.
    The batched path is byte-identical to the scalar one and ignores
    ``jobs`` (there is no per-lane work left to fan out).

    Args:
        specs: metric/finding pairs; for the parallel path their
            callables must be module-level functions (picklable) —
            otherwise the sweep silently runs serially.
        scales: multiplicative perturbations applied to each parameter.
        parameters: knobs to perturb (default: :data:`PERTURBABLE`).
        problem_class: NAS class for the underlying runs.
        jobs: process-pool width (None = the global default, 1 = serial).
    """
    from repro.sim import batch as _batch
    from repro.sim.parallel import parallel_map, serial_map

    params = list(parameters or PERTURBABLE)
    grid = [
        (name, path, scale) for name, path in params for scale in scales
    ]
    specs = tuple(specs)
    base_study = Study(problem_class)

    def baselines() -> List[SensitivityResult]:
        return [
            SensitivityResult(
                metric_name=spec.metric_name,
                baseline=spec.metric(base_study),
            )
            for spec in specs
        ]

    use_batch = (
        _batch.batching_allowed(len(grid))
        and not _batch.runtime_forces_scalar()
    )
    if use_batch:
        with _batch.record_run_keys() as keys:
            results = baselines()
        _batch.note_scalar_fallback(1)  # the recording lane runs scalar
        lane_studies = [
            Study(
                problem_class,
                params=perturb_params(default_params(), path, scale),
            )
            for _, path, scale in grid
        ]
        _batch.prefetch_study_runs(lane_studies, keys)
        evaluated = serial_map(
            lambda study: [
                (spec.metric(study), spec.finding(study)) for spec in specs
            ],
            lane_studies,
        )
    else:
        results = baselines()
        evaluated = parallel_map(
            _eval_perturbation,
            [(specs, problem_class, path, scale) for _, path, scale in grid],
            jobs=jobs,
        )
    for (name, _, scale), per_spec in zip(grid, evaluated):
        for result, (value, holds) in zip(results, per_spec):
            result.rows.append(
                SensitivityRow(
                    parameter=name,
                    scale=scale,
                    metric_value=value,
                    baseline_value=result.baseline,
                    finding_holds=holds,
                )
            )
    return results


def sweep(
    metric: Callable[[Study], float],
    finding: Callable[[Study], bool],
    metric_name: str,
    scales: Sequence[float] = (0.8, 1.25),
    parameters: Optional[Sequence[Tuple[str, Tuple[str, ...]]]] = None,
    problem_class: str = "B",
    jobs: Optional[int] = None,
) -> SensitivityResult:
    """Perturb each parameter and re-evaluate metric + finding.

    Args:
        metric: scalar evaluated on a Study (e.g. SP's HTon-8-2 speedup).
        finding: boolean claim evaluated on a Study.
        metric_name: label for reports.
        scales: multiplicative perturbations applied to each parameter.
        parameters: knobs to perturb (default: :data:`PERTURBABLE`).
        problem_class: NAS class for the underlying runs.
        jobs: process-pool width (None = the global default, 1 = serial).
    """
    return sweep_many(
        [SweepSpec(metric, finding, metric_name)],
        scales=scales,
        parameters=parameters,
        problem_class=problem_class,
        jobs=jobs,
    )[0]
