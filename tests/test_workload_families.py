"""Tests for the new workload families (minigmg, rzbench kernels).

The families must be first-class citizens of the whole stack: audited by
the invariant auditor, batchable by the machine-axis engine, sweepable
by the experiment drivers, and cache-keyed through the registry tokens.
"""

import pytest

from repro import verify
from repro.core.context import RunContext
from repro.core.study import Study
from repro.npb.common import ProblemClass
from repro.workload.families import minigmg, rzbench


class TestMiniGMG:
    def test_level_working_sets_shrink_eightfold(self):
        wl = minigmg.build(ProblemClass.B)
        smooth = [p for p in wl.phases if p.name.startswith("smooth_l")]
        assert len(smooth) >= 4
        # The grid (stencil) footprint halves each edge, so it shrinks
        # 8x per level; the fixed scalar side-pattern is excluded.
        grids = [
            next(
                p_.footprint_bytes
                for _, p_ in p.access_mix.components
                if type(p_).__name__ == "StencilPattern"
            )
            for p in smooth
        ]
        for finer, coarser in zip(grids, grids[1:]):
            assert finer / coarser == pytest.approx(8.0)
        # And the phase-level working set is dominated by the grid.
        sets = [p.working_set_bytes() for p in smooth]
        assert sets == sorted(sets, reverse=True)

    def test_bottom_solve_is_barrier_bound(self):
        wl = minigmg.build(ProblemClass.B)
        bottom = wl.phases[-1]
        assert bottom.name == "bottom_solve"
        assert bottom.barriers > max(
            p.barriers for p in wl.phases[:-1]
        )

    def test_class_scaling_monotone(self):
        small = minigmg.build(ProblemClass.W)
        big = minigmg.build(ProblemClass.B)
        assert big.total_instructions > small.total_instructions
        assert big.working_set_bytes > small.working_set_bytes

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError, match="fine_edge"):
            minigmg.build(ProblemClass.B, fine_edge=8)

    def test_spec_round_trips(self):
        spec = minigmg.spec(ProblemClass.B)
        from repro.workload.spec import WorkloadSpec

        assert WorkloadSpec.from_dict(spec.to_dict()).build() == spec.build()


class TestRZBench:
    def test_triad_streams_three_arrays(self):
        wl = rzbench.triad_build(ProblemClass.B, elements=2 ** 20)
        # Three streamed arrays plus the 512 B scalar footprint.
        assert wl.working_set_bytes == 3 * 8 * 2 ** 20 + 512

    def test_strided_prefetchability_degrades_with_stride(self):
        short = rzbench.strided_load_build(ProblemClass.B, stride_bytes=8)
        long_ = rzbench.strided_load_build(ProblemClass.B, stride_bytes=512)
        assert (
            short.phases[0].prefetchability
            > long_.phases[0].prefetchability
        )

    def test_mem_ops_clamped(self):
        with pytest.raises(ValueError, match="mem_ops_per_instr"):
            rzbench.triad_build(ProblemClass.B, mem_ops_per_instr=1.5)

    def test_specs_memoized(self):
        assert rzbench.triad_spec(ProblemClass.B) is rzbench.triad_spec(
            ProblemClass.B
        )


class TestAuditedRuns:
    @pytest.mark.parametrize("name", ["minigmg", "triad", "strided-load"])
    def test_families_pass_the_invariant_auditor(self, name):
        st = Study("B")
        before = verify.stats().snapshot()
        with verify.verification(True):
            result = st.engine("ht_off_4_2").run_single(st.workload(name))
        delta = verify.stats().since(before)
        assert result.runtime_seconds > 0
        assert delta.runs == 1 and delta.violations == 0
        assert delta.checks > 0

    def test_minigmg_speedup_sane(self):
        st = Study("B")
        s = st.speedup("minigmg", "ht_off_4_2")
        assert 1.0 < s <= 8.0


class TestBatchedEquivalence:
    def test_minigmg_batched_equals_scalar(self):
        from repro.machine.registry import resolve_machine
        from repro.sim.batch import run_batched_single
        from tests.test_batch_equivalence import assert_identical_runs

        # Lane-uniform hierarchy depth (two levels): deeper machines
        # like broadwell-shared-l3 fall back to scalar runs by design.
        variants = [
            resolve_machine("paxville").to_params(),
            resolve_machine("nextgen-shared-l2").to_params(),
            resolve_machine("nextgen-shared-l2-4mb").to_params(),
        ]
        studies = [Study("B", params=p) for p in variants]
        workloads = [st.workload("minigmg") for st in studies]
        # The auditor forces scalar resolves by design; batching is the
        # subject here, so switch it off for both paths.
        with verify.verification(False):
            batched = run_batched_single(
                [st.engine("ht_off_4_2") for st in studies], workloads
            )
            assert batched is not None
            for st, wl, res in zip(studies, workloads, batched):
                scalar = st.engine("ht_off_4_2").run_single(wl)
                assert_identical_runs(res, scalar, tag="minigmg")


class TestDriverSweeps:
    def test_fig3_with_new_families(self):
        from repro.experiments import fig3_speedup

        ctx = RunContext(
            machine="broadwell-shared-l3",
            workloads=["minigmg", "triad"],
        )
        result = fig3_speedup.run(ctx)
        assert set(result.table.benchmarks) == {"minigmg", "triad"}
        for bench in result.table.benchmarks:
            for config in result.config_order:
                assert result.table.get(bench, config) > 0

    def test_fig3_default_is_unchanged(self):
        from repro.experiments import fig3_speedup

        result = fig3_speedup.run(RunContext())
        assert set(result.table.benchmarks) == set(Study.paper_benchmarks())
