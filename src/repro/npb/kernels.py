"""Real NumPy mini-kernels implementing the NAS algorithms.

These run the actual numerics at reduced scale: they validate that the
workload models describe real algorithms (reuse shapes, operation counts)
and provide NPB-style verification values for the test suite.  They are
not used inside the timing simulation — phase descriptors are derived
from problem dimensions analytically — but several derivations (flops per
point, footprint formulas) are cross-checked against these kernels in
tests.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


# ----------------------------------------------------------------------
# CG: conjugate gradient with a random sparse SPD matrix
# ----------------------------------------------------------------------
def make_sparse_spd(
    n: int, nonzer: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build a CSR-like random sparse symmetric positive-definite matrix.

    Mirrors NPB ``makea``: random sparsity with ``nonzer`` off-diagonal
    entries per row plus a dominant diagonal shift.

    Returns (data, indices, indptr).
    """
    rows = []
    cols = []
    vals = []
    for i in range(n):
        js = rng.choice(n, size=nonzer, replace=False)
        vs = rng.random(nonzer) * 2.0 - 1.0
        for j, v in zip(js, vs):
            # Symmetrize by emitting both (i, j) and (j, i).
            rows.append(i)
            cols.append(int(j))
            vals.append(v)
            rows.append(int(j))
            cols.append(i)
            vals.append(v)
    for i in range(n):
        rows.append(i)
        cols.append(i)
        vals.append(float(2 * nonzer + 10))  # diagonal dominance -> SPD
    order = np.lexsort((np.array(cols), np.array(rows)))
    r = np.array(rows)[order]
    c = np.array(cols)[order]
    v = np.array(vals)[order]
    # Merge duplicates.
    key = r.astype(np.int64) * n + c
    uniq, inv = np.unique(key, return_inverse=True)
    data = np.zeros(len(uniq))
    np.add.at(data, inv, v)
    rr = (uniq // n).astype(np.int64)
    cc = (uniq % n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rr + 1, 1)
    indptr = np.cumsum(indptr)
    return data, cc, indptr


def spmv(data: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
         x: np.ndarray) -> np.ndarray:
    """CSR sparse matrix-vector product."""
    n = len(indptr) - 1
    y = np.zeros(n)
    for i in range(n):
        s, e = indptr[i], indptr[i + 1]
        y[i] = data[s:e] @ x[indices[s:e]]
    return y


def cg_solve(
    n: int = 256,
    nonzer: int = 5,
    niter: int = 15,
    shift: float = 10.0,
    seed: int = 314159,
) -> Tuple[float, float]:
    """NPB-CG power-method driver: returns (zeta, final residual norm).

    Each outer iteration runs 25 CG steps on ``A z = x`` and updates the
    shifted eigenvalue estimate ``zeta = shift + 1 / (x . z)``.
    """
    rng = np.random.default_rng(seed)
    data, indices, indptr = make_sparse_spd(n, nonzer, rng)
    x = np.ones(n)
    zeta = 0.0
    rnorm = 0.0
    for _ in range(niter):
        z, rnorm = _cg_inner(data, indices, indptr, x, 25)
        zeta = shift + 1.0 / float(x @ z)
        x = z / np.linalg.norm(z)
    return zeta, rnorm


def _cg_inner(data, indices, indptr, b, steps: int) -> Tuple[np.ndarray, float]:
    n = len(b)
    z = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(steps):
        q = spmv(data, indices, indptr, p)
        alpha = rho / float(p @ q)
        z = z + alpha * p
        r = r - alpha * q
        rho_new = float(r @ r)
        beta = rho_new / rho
        rho = rho_new
        p = r + beta * p
    return z, math.sqrt(rho)


# ----------------------------------------------------------------------
# MG: multigrid V-cycle for 3-D Poisson
# ----------------------------------------------------------------------
def mg_vcycle(n: int = 32, cycles: int = 4, seed: int = 7) -> float:
    """Run V-cycles of a 3-D multigrid Poisson solver on an n^3 grid.

    Returns the final residual L2 norm (must decrease monotonically; the
    test suite checks convergence order).  ``n`` must be a power of two.
    """
    if n & (n - 1):
        raise ValueError("grid size must be a power of two")
    rng = np.random.default_rng(seed)
    v = np.zeros((n, n, n))
    f = rng.standard_normal((n, n, n))
    f -= f.mean()  # compatibility condition for periodic Poisson
    for _ in range(cycles):
        v = _vcycle(v, f)
    return float(np.linalg.norm(_residual(v, f)))


def _laplacian(u: np.ndarray) -> np.ndarray:
    """Periodic 7-point Laplacian, unit grid spacing."""
    return (
        np.roll(u, 1, 0) + np.roll(u, -1, 0)
        + np.roll(u, 1, 1) + np.roll(u, -1, 1)
        + np.roll(u, 1, 2) + np.roll(u, -1, 2)
        - 6.0 * u
    )


def _residual(v: np.ndarray, f: np.ndarray) -> np.ndarray:
    return f - _laplacian(v)


def _smooth(v: np.ndarray, f: np.ndarray, passes: int = 3) -> np.ndarray:
    """Damped Jacobi: with L = (neighbor sum) - 6 I and r = f - L v, the
    Jacobi update is v - omega * r / 6."""
    omega = 0.85
    for _ in range(passes):
        v = v - omega / 6.0 * _residual(v, f)
    return v


def _restrict(r: np.ndarray) -> np.ndarray:
    return 0.125 * (
        r[0::2, 0::2, 0::2] + r[1::2, 0::2, 0::2]
        + r[0::2, 1::2, 0::2] + r[0::2, 0::2, 1::2]
        + r[1::2, 1::2, 0::2] + r[1::2, 0::2, 1::2]
        + r[0::2, 1::2, 1::2] + r[1::2, 1::2, 1::2]
    )


def _prolong(e: np.ndarray) -> np.ndarray:
    n = e.shape[0] * 2
    out = np.zeros((n, n, n))
    out[0::2, 0::2, 0::2] = e
    out[1::2, :, :] = 0.5 * (out[0::2, :, :] + np.roll(out, -2, 0)[0::2, :, :])
    out[:, 1::2, :] = 0.5 * (out[:, 0::2, :] + np.roll(out, -2, 1)[:, 0::2, :])
    out[:, :, 1::2] = 0.5 * (out[:, :, 0::2] + np.roll(out, -2, 2)[:, :, 0::2])
    return out


def _vcycle(v: np.ndarray, f: np.ndarray) -> np.ndarray:
    v = _smooth(v, f)
    if v.shape[0] <= 4:
        return _smooth(v, f, passes=8)
    r = _restrict(_residual(v, f))
    e = _vcycle(np.zeros_like(r), r)
    v = v + _prolong(e)
    return _smooth(v, f)


# ----------------------------------------------------------------------
# FT: 3-D FFT PDE evolution
# ----------------------------------------------------------------------
def ft_evolve(
    shape: Tuple[int, int, int] = (16, 16, 16),
    niter: int = 3,
    alpha: float = 1e-6,
    seed: int = 11,
) -> np.ndarray:
    """NPB-FT: evolve a PDE spectrally; returns per-iteration checksums.

    Computes ``u(t) = ifft(exp(-4 alpha pi^2 |k|^2 t) * fft(u0))`` and a
    checksum per time step (sum over a stride-probed subset, as NPB
    does).
    """
    rng = np.random.default_rng(seed)
    u0 = rng.random(shape) + 1j * rng.random(shape)
    u_hat = np.fft.fftn(u0)
    ks = [np.fft.fftfreq(n) * n for n in shape]
    kx, ky, kz = np.meshgrid(*ks, indexing="ij")
    k2 = kx**2 + ky**2 + kz**2
    sums = []
    for t in range(1, niter + 1):
        w = u_hat * np.exp(-4.0 * alpha * np.pi**2 * k2 * t)
        u = np.fft.ifftn(w)
        flat = u.reshape(-1)
        idx = (np.arange(1024) * 17) % flat.size
        sums.append(complex(flat[idx].sum()))
    return np.array(sums)


# ----------------------------------------------------------------------
# EP: embarrassingly parallel Gaussian pairs
# ----------------------------------------------------------------------
def ep_pairs(log2_pairs: int = 16, seed: int = 271828183) -> Tuple[np.ndarray, float]:
    """NPB-EP: count Gaussian deviates per annulus via Marsaglia polar.

    Returns (counts per square annulus 0..9, sum of accepted pair count).
    Uses numpy's generator rather than NPB's linear congruential stream;
    the acceptance statistics (pi/4 accept rate) are what tests verify.
    """
    n = 1 << log2_pairs
    rng = np.random.default_rng(seed)
    x = rng.random(n) * 2.0 - 1.0
    y = rng.random(n) * 2.0 - 1.0
    t = x * x + y * y
    ok = t <= 1.0
    tt = t[ok]
    factor = np.sqrt(-2.0 * np.log(tt) / tt)
    gx = x[ok] * factor
    gy = y[ok] * factor
    m = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
    counts = np.bincount(np.clip(m, 0, 9), minlength=10)
    return counts, float(ok.sum())


# ----------------------------------------------------------------------
# IS: integer bucket sort
# ----------------------------------------------------------------------
def is_sort(
    n_keys: int = 1 << 14, max_key: int = 1 << 11, seed: int = 42
) -> Tuple[np.ndarray, bool]:
    """NPB-IS: bucket-sort integer keys; returns (ranks, sorted_ok)."""
    rng = np.random.default_rng(seed)
    # NPB generates keys as an average of 4 uniform randoms (binomial-ish).
    keys = (
        rng.integers(0, max_key, n_keys)
        + rng.integers(0, max_key, n_keys)
        + rng.integers(0, max_key, n_keys)
        + rng.integers(0, max_key, n_keys)
    ) // 4
    hist = np.bincount(keys, minlength=max_key)
    ranks = np.cumsum(hist) - hist  # starting rank of each key value
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    return ranks, bool(np.all(np.diff(sorted_keys) >= 0))


# ----------------------------------------------------------------------
# SP/BT/LU-style structured-grid sweeps
# ----------------------------------------------------------------------
def sp_line_solve(n: int = 24, iters: int = 2, seed: int = 5) -> float:
    """Scalar-pentadiagonal line sweeps along each dimension (SP's ADI
    pattern) on an n^3 scalar field; returns the field norm (stability
    check: norm must stay finite and decrease under diffusion)."""
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((n, n, n))
    # Diffusive implicit sweep approximated by tridiagonal
    # (Thomas algorithm) along each axis.
    for _ in range(iters):
        for axis in range(3):
            u = _thomas_diffuse(u, axis, dt=0.1)
    return float(np.linalg.norm(u))


def _thomas_diffuse(u: np.ndarray, axis: int, dt: float) -> np.ndarray:
    """Solve (I - dt * d2/dx2) u_new = u along ``axis`` (Dirichlet)."""
    u = np.moveaxis(u, axis, 0)
    n = u.shape[0]
    a = -dt * np.ones(n)  # sub
    b = (1.0 + 2.0 * dt) * np.ones(n)  # diag
    c = -dt * np.ones(n)  # super
    a[0] = c[-1] = 0.0
    rhs = u.reshape(n, -1).copy()
    cp = np.zeros(n)
    # Forward sweep.
    cp[0] = c[0] / b[0]
    rhs[0] /= b[0]
    for i in range(1, n):
        m = b[i] - a[i] * cp[i - 1]
        cp[i] = c[i] / m
        rhs[i] = (rhs[i] - a[i] * rhs[i - 1]) / m
    # Back substitution.
    for i in range(n - 2, -1, -1):
        rhs[i] -= cp[i] * rhs[i + 1]
    return np.moveaxis(rhs.reshape(u.shape), 0, axis)


def lu_ssor_sweep(n: int = 16, iters: int = 3, omega: float = 1.2,
                  seed: int = 3) -> float:
    """LU's SSOR wavefront: lower+upper triangular sweeps of a 7-point
    operator; returns the residual norm after ``iters`` sweeps (must
    decrease: SSOR converges for diffusion-dominated systems)."""
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((n, n, n))
    u = np.zeros((n, n, n))
    for _ in range(iters):
        # Lower (forward) wavefront sweep, Gauss-Seidel ordering.
        for k in range(1, n - 1):
            for j in range(1, n - 1):
                u[1:-1, j, k] = (1 - omega) * u[1:-1, j, k] + omega / 6.0 * (
                    u[:-2, j, k] + u[2:, j, k]
                    + u[1:-1, j - 1, k] + u[1:-1, j + 1, k]
                    + u[1:-1, j, k - 1] + u[1:-1, j, k + 1]
                    - f[1:-1, j, k]
                )
        # Upper (backward) sweep.
        for k in range(n - 2, 0, -1):
            for j in range(n - 2, 0, -1):
                u[1:-1, j, k] = (1 - omega) * u[1:-1, j, k] + omega / 6.0 * (
                    u[:-2, j, k] + u[2:, j, k]
                    + u[1:-1, j - 1, k] + u[1:-1, j + 1, k]
                    + u[1:-1, j, k - 1] + u[1:-1, j, k + 1]
                    - f[1:-1, j, k]
                )
    res = _laplacian(u) - f
    return float(np.linalg.norm(res[1:-1, 1:-1, 1:-1]))
