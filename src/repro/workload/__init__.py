"""Declarative workload layer: specs, registry and workload families.

The spec half (:mod:`repro.workload.spec`) is imported eagerly; the
registry and families are reached lazily via module ``__getattr__``
because they import the NAS modules, which in turn use the spec layer —
an eager import here would be circular.
"""

from repro.workload.spec import (
    WORKLOAD_SCHEMA_VERSION,
    WorkloadSpec,
    WorkloadSpecError,
    load_workload_spec,
)

__all__ = [
    "WORKLOAD_SCHEMA_VERSION",
    "WorkloadSpec",
    "WorkloadSpecError",
    "UnknownWorkloadError",
    "build_workload",
    "list_workloads",
    "load_workload_spec",
    "resolve_workload",
    "workloads_dir",
]

_REGISTRY_EXPORTS = (
    "UnknownWorkloadError",
    "build_workload",
    "builtin_producers",
    "list_workloads",
    "resolve_workload",
    "workloads_dir",
)


def __getattr__(name):
    if name in _REGISTRY_EXPORTS:
        from repro.workload import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
