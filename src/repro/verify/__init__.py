"""Runtime verification: the simulator's physics as an enforced contract.

Every run of the :class:`~repro.sim.engine.Engine` obeys conservation
laws the paper's counter arithmetic rests on — hits + misses close,
stall cycles never exceed total cycles, simulated time only advances,
the bus never carries more than its capacity, the contention fixed
point actually converged.  The byte-identity goldens catch *drift* from
those laws but not latent wrongness shared with the golden; this
package checks the laws themselves, at runtime, on every audited run.

The auditor is an ordinary :class:`~repro.sim.observer.SimObserver`
(:class:`InvariantAuditor`), attached automatically by the engine when
verification is enabled.  Enablement mirrors the fault-injection
harness (:mod:`repro.testing.faults`):

* programmatically — :func:`activate` / :func:`deactivate`, the
  :func:`verification` context manager, or
  ``RunContext(verify=True/False)`` (threaded into pool workers by
  ``apply_runtime_config``);
* from the environment — ``REPRO_VERIFY=1`` / ``REPRO_VERIFY=0``
  (what the CI drill uses; forked pool workers inherit it);
* by default **under pytest** — when neither an explicit flag nor the
  environment decides, the auditor is on whenever pytest is driving
  (``PYTEST_CURRENT_TEST`` is set), so the whole test suite doubles as
  a physics audit at negligible cost.

A violated invariant raises :class:`InvariantViolation` with full
provenance — check name, step index, phase, program, hardware context,
and the offending values — so a broken resolver is caught at the first
incoherent step, not as a mysteriously wrong artifact.

``repro verify`` runs the auditor over the full experiment matrix (see
:mod:`repro.cli`); ``docs/TESTING.md`` documents the taxonomy.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.verify.auditor import (  # noqa: F401  (re-exports)
    AuditStats,
    InvariantAuditor,
    InvariantViolation,
    reset_stats,
    stats,
)

__all__ = [
    "VERIFY_ENV",
    "AuditStats",
    "InvariantAuditor",
    "InvariantViolation",
    "activate",
    "deactivate",
    "enabled",
    "stats",
    "reset_stats",
    "verification",
]

VERIFY_ENV = "REPRO_VERIFY"

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off"}

#: Explicit activation slot; ``None`` defers to environment, then pytest.
_explicit: Optional[bool] = None


def activate(flag: Optional[bool]) -> None:
    """Set the explicit verification switch (``None`` clears it).

    An explicit ``True``/``False`` always wins; with ``None`` the
    environment (``REPRO_VERIFY``) decides, and absent that the
    pytest-autodetection default applies.
    """
    global _explicit
    _explicit = flag


def deactivate() -> None:
    """Clear the explicit switch (environment/pytest defaults apply)."""
    activate(None)


def enabled() -> bool:
    """Is the invariant auditor attached to engine runs right now?"""
    if _explicit is not None:
        return _explicit
    env = os.environ.get(VERIFY_ENV, "").strip().lower()
    if env in _TRUTHY:
        return True
    if env in _FALSY:
        return False
    # Default: audit whenever pytest is driving the process.
    return "PYTEST_CURRENT_TEST" in os.environ


@contextmanager
def verification(on: bool = True) -> Iterator[None]:
    """Force verification on (or off) for the duration of a block."""
    previous = _explicit
    activate(on)
    try:
        yield
    finally:
        activate(previous)


# :class:`AuditStats` and the process-wide :func:`stats` /
# :func:`reset_stats` accounting live in :mod:`repro.verify.auditor`
# (the auditor increments them at check time) and are re-exported here.
