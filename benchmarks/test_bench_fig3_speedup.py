"""Benchmark: regenerate the Figure-3 per-application speedup series."""

from repro.core.study import Study
from repro.experiments import fig3_speedup


def test_bench_fig3_speedup(benchmark):
    def regenerate():
        return fig3_speedup.run(Study("B"))

    result = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    print()
    print(fig3_speedup.report(result))
    # Shape: SP is the only benchmark faster at HT on 2-8-2 than HT off
    # 2-4-2 (the paper's group-4 exception).
    winners = [
        b for b in result.table.benchmarks
        if result.table.get(b, "ht_on_8_2") > result.table.get(b, "ht_off_4_2")
    ]
    assert winners == ["SP"]
