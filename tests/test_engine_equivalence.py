"""Pre-refactor equivalence: the decomposed engine and the spec-loaded
machines must reproduce the monolithic engine's artifacts byte for byte.

The goldens under ``tests/goldens/`` were captured from ``repro run``
before the engine was split into resolver/accountant/observer modules
and before machine parameters moved behind the spec layer.  Any
arithmetic drift — a reordered operation, a float perturbed by spec
serialization — shows up here as a one-character diff.
"""

from pathlib import Path

import pytest

from repro.core.context import RunContext
from repro.experiments import registry
from repro.machine.registry import machines_dir

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Artifacts with checked-in pre-refactor goldens.
GOLDEN_IDS = ["fig2", "fig3", "table2", "nextgen"]


def render(experiment_id: str, **ctx_kwargs) -> str:
    entry = registry.get(experiment_id)
    result = entry.run(RunContext(**ctx_kwargs))
    # ``repro run`` prints the text, so the captured goldens end with
    # exactly one trailing newline.
    return entry.render_text(result) + "\n"


@pytest.mark.parametrize("experiment_id", GOLDEN_IDS)
def test_artifact_matches_pre_refactor_golden(experiment_id):
    golden = (GOLDEN_DIR / f"{experiment_id}.txt").read_text()
    assert render(experiment_id) == golden


class TestMachineTokenEquivalence:
    """``--machine paxville`` and ``--machine machines/paxville.json``
    are the default machine, to the last byte."""

    @pytest.fixture(scope="class")
    def default_text(self):
        return render("table2")

    def test_named_machine_is_byte_identical(self, default_text):
        assert render("table2", machine="paxville") == default_text

    def test_spec_file_is_byte_identical(self, default_text):
        directory = machines_dir()
        if directory is None:  # pragma: no cover - installed package
            pytest.skip("no machines/ directory in this deployment")
        path = directory / "paxville.json"
        assert render("table2", machine=path) == default_text
