"""Front-side bus and hardware-prefetcher contention model.

Each chip drives one FSB port; both ports converge on the shared memory
controller.  Demand traffic is the L2 miss stream of every core; the
stride prefetcher opportunistically converts regular demand misses into
prefetch hits *only when bus headroom exists* — the mechanism behind the
paper's observation that only lightly-loaded configurations (group 2)
spend ~50 % of their bus accesses prefetching.

Queueing is modeled with an M/G/1-flavoured latency multiplier
``1 + c * rho^2 / (1 - rho)`` on the DRAM access latency, evaluated at the
binding bottleneck (chip port or memory controller).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.machine.params import BusParams


@dataclass
class BusLoad:
    """Demand traffic offered by one hardware context.

    Attributes:
        key: opaque identifier (context label) used to match outcomes.
        chip: physical chip carrying this context.
        demand_bytes_per_sec: L2 miss traffic at the current execution
            rate estimate.
        read_fraction: fraction of traffic that is reads (line fills).
        prefetchability: stride-regularity of the miss stream (0..1).
    """

    key: str
    chip: int
    demand_bytes_per_sec: float
    read_fraction: float = 0.8
    prefetchability: float = 0.5


@dataclass
class BusOutcome:
    """Resolved bus behaviour for one context's load."""

    key: str
    #: Multiplier on DRAM latency from queueing (>= 1).
    latency_multiplier: float
    #: Fraction of demand misses converted to prefetch hits.
    prefetch_coverage: float
    #: Demand bus transactions per second.
    demand_tps: float
    #: Prefetch bus transactions per second.
    prefetch_tps: float
    #: Utilization of the binding bottleneck seen by this context.
    utilization: float

    @property
    def prefetch_access_fraction(self) -> float:
        """Fraction of this context's bus accesses that are prefetches."""
        total = self.demand_tps + self.prefetch_tps
        return self.prefetch_tps / total if total else 0.0


#: Extra speculative transactions issued per useful prefetch.
PREFETCH_WASTE = 0.18
#: Queueing-multiplier curvature and cap.  The multiplier only models the
#: *latency* inflation at moderate load; outright saturation is handled
#: separately by the engine's bandwidth-sharing term (utilization > 1
#: scales execution time directly), so the cap stays mild — a stiff
#: M/M/1 curve here would make the CPI/bus fixed point oscillate.
_QUEUE_COEFF = 0.45
_QUEUE_CAP = 2.5


class BusModel:
    """Resolves FSB/memory-controller contention for a set of loads."""

    def __init__(self, params: BusParams, n_chips_total: int = 2):
        self.params = params
        self.n_chips_total = n_chips_total

    def _capacity(self, read_fraction: float, scope: str) -> float:
        """Harmonic-mean capacity for a read/write mix at chip or system
        scope."""
        p = self.params
        if scope == "chip":
            read_bw, write_bw = p.chip_read_bw, p.chip_write_bw
        else:
            read_bw, write_bw = p.system_read_bw, p.system_write_bw
        wf = 1.0 - read_fraction
        denom = read_fraction / read_bw + wf / write_bw
        return 1.0 / denom if denom > 0 else read_bw

    def resolve(self, loads: Sequence[BusLoad]) -> Dict[str, BusOutcome]:
        """Compute per-context bus outcomes for simultaneous loads.

        The prefetcher and the queueing delay interact: prefetch traffic
        raises utilization, and coverage shrinks as headroom vanishes.  A
        short damped fixed-point iteration resolves both.
        """
        if not loads:
            return {}
        chips = sorted({l.chip for l in loads})
        coverage = {l.key: 0.0 for l in loads}
        # Snoop traffic from every agent with misses in flight consumes
        # address-bus capacity; cross-chip snoops are reflected through
        # the memory controller and cost more.
        agents_on = {}
        for l in loads:
            if l.demand_bytes_per_sec > 0:
                agents_on[l.chip] = agents_on.get(l.chip, 0) + 1
        n_agents = sum(agents_on.values())
        snoop_by_chip = {}
        for c in chips:
            local = max(agents_on.get(c, 0) - 1, 0)
            remote = sum(v for ch, v in agents_on.items() if ch != c)
            snoop_by_chip[c] = (
                1.0
                + self.params.snoop_overhead_per_agent * local
                + self.params.snoop_overhead_cross_chip * remote
            )
        snoop_sys = (
            sum(snoop_by_chip.values()) / len(snoop_by_chip)
            if snoop_by_chip
            else 1.0
        )

        for _ in range(24):
            chip_offered = {c: 0.0 for c in chips}
            chip_read_frac = {c: 0.0 for c in chips}
            for l in loads:
                # Covered misses move from demand to prefetch transactions
                # (same line transfer) plus wasted speculative fetches.
                cov = coverage[l.key]
                offered = l.demand_bytes_per_sec * (
                    (1.0 - cov) + cov * (1.0 + PREFETCH_WASTE)
                )
                chip_offered[l.chip] += offered
                chip_read_frac[l.chip] += offered * l.read_fraction

            total_offered = sum(chip_offered.values())
            sys_read_frac = (
                sum(chip_read_frac.values()) / total_offered if total_offered else 0.8
            )
            utils = {}
            for c in chips:
                rf = (
                    chip_read_frac[c] / chip_offered[c]
                    if chip_offered[c]
                    else 0.8
                )
                chip_util = (
                    chip_offered[c] * snoop_by_chip[c]
                    / self._capacity(rf, "chip")
                )
                sys_util = (
                    total_offered * snoop_sys
                    / self._capacity(sys_read_frac, "system")
                )
                utils[c] = max(chip_util, sys_util)

            new_cov = {}
            for l in loads:
                u = utils[l.chip]
                headroom = max(0.0, (self.params.prefetch_headroom - u))
                head_factor = min(1.0, headroom / self.params.prefetch_headroom * 2.2)
                cov = self.params.prefetch_max_coverage * l.prefetchability * head_factor
                # Damping keeps the loop from oscillating at the knee.
                new_cov[l.key] = 0.5 * coverage[l.key] + 0.5 * cov
            delta = max(abs(new_cov[k] - coverage[k]) for k in coverage)
            coverage = new_cov
            if delta < 1e-6:
                break

        outcomes: Dict[str, BusOutcome] = {}
        tx = self.params.transaction_bytes
        for l in loads:
            u = min(utils[l.chip], 0.98)
            mult = 1.0 + _QUEUE_COEFF * u * u / (1.0 - u)
            mult = min(mult, _QUEUE_CAP)
            cov = coverage[l.key]
            miss_tps = l.demand_bytes_per_sec / tx
            demand_tps = miss_tps * (1.0 - cov)
            prefetch_tps = cov * miss_tps * (1.0 + PREFETCH_WASTE)
            outcomes[l.key] = BusOutcome(
                key=l.key,
                latency_multiplier=mult,
                prefetch_coverage=cov,
                demand_tps=demand_tps,
                prefetch_tps=prefetch_tps,
                utilization=utils[l.chip],
            )
        return outcomes

    def streaming_bandwidth(
        self, n_chips_active: int, kind: str = "read"
    ) -> float:
        """Aggregate achievable streaming bandwidth (LMbench ``bw_mem``).

        Args:
            n_chips_active: chips with active streaming threads.
            kind: ``"read"`` or ``"write"``.
        """
        p = self.params
        if kind == "read":
            chip, system = p.chip_read_bw, p.system_read_bw
        elif kind == "write":
            chip, system = p.chip_write_bw, p.system_write_bw
        else:
            raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
        return min(chip * n_chips_active, system)
