"""The named machine registry: specs under ``machines/`` plus built-ins.

Resolution order for ``repro run --machine <token>``:

* a token containing a path separator or a ``.json``/``.toml`` suffix is
  loaded directly as a spec file;
* otherwise the token names a registered machine — the union of the
  code-defined built-ins (always available, even in an installed package
  without the repository checkout) and every spec file found in the
  machines directory (``REPRO_MACHINES_DIR``, defaulting to
  ``machines/`` at the repository root).  A spec file whose ``name``
  matches a built-in shadows it, and the listing reports the file as its
  provenance.

:func:`default_params` is the single place the rest of the codebase gets
"the platform" from: the registry's default machine (``paxville``),
memoized per process.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.machine.params import MachineParams, paxville_params
from repro.machine.spec import MachineSpec, SpecError, load_spec

__all__ = [
    "DEFAULT_MACHINE",
    "MACHINES_DIR_ENV",
    "UnknownMachineError",
    "builtin_specs",
    "default_params",
    "list_machines",
    "machines_dir",
    "resolve_machine",
]

MACHINES_DIR_ENV = "REPRO_MACHINES_DIR"
DEFAULT_MACHINE = "paxville"

#: Spec file suffixes the registry scans for, in listing order.
_SPEC_SUFFIXES = (".json", ".toml")


class UnknownMachineError(KeyError):
    """An unregistered machine name (the CLI maps this to exit 2)."""

    def __init__(self, name: str, valid: list):
        import difflib

        self.machine = name
        self.valid = list(valid)
        self.suggestion: Optional[str] = next(
            iter(difflib.get_close_matches(name, self.valid, n=1)), None
        )
        message = (
            f"unknown machine {name!r}; valid choices: {', '.join(valid)}"
        )
        if self.suggestion is not None:
            message += f" (did you mean {self.suggestion!r}?)"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its payload by default
        return self.args[0]


_builtin_cache: Optional[Dict[str, MachineSpec]] = None


def builtin_specs() -> Dict[str, MachineSpec]:
    """Code-defined specs, available without any spec files on disk."""
    global _builtin_cache
    if _builtin_cache is None:
        _builtin_cache = {
            DEFAULT_MACHINE: MachineSpec.from_params(
                DEFAULT_MACHINE,
                paxville_params(),
                description=(
                    "Dual dual-core HT Xeon (Paxville) of the paper's "
                    "Dell PowerEdge 2850"
                ),
            ),
        }
    return dict(_builtin_cache)


def machines_dir() -> Optional[Path]:
    """The spec-file directory, or ``None`` when absent.

    ``REPRO_MACHINES_DIR`` overrides the default location (``machines/``
    at the repository root, resolved relative to this package so tests
    and the CLI agree regardless of the working directory).
    """
    env = os.environ.get(MACHINES_DIR_ENV, "").strip()
    if env:
        path = Path(env)
        return path if path.is_dir() else None
    return _default_machines_dir if _default_machines_dir.is_dir() else None


#: ``machines/`` at the repository root; computed once (resolving
#: ``__file__`` walks the whole path through realpath, too slow for the
#: per-call registry signature check).
_default_machines_dir = Path(__file__).resolve().parents[3] / "machines"


#: One-generation registry cache.  ``machine_params()`` sits on hot
#: experiment paths, so a listing must not re-parse five spec files per
#: call; instead the parsed registry is reused while the directory's
#: signature — one scandir pass of (name, mtime_ns, size) — is
#: unchanged, so edits are picked up without restarting the process.
#: MachineSpec is frozen, making the shared instances safe.
_registry_cache: Optional[
    Tuple[Optional[Path], Optional[tuple], Dict[str, MachineSpec]]
] = None


def _dir_signature(directory: Path) -> tuple:
    entries = []
    with os.scandir(directory) as it:
        for entry in it:
            if entry.name.lower().endswith(_SPEC_SUFFIXES):
                stat = entry.stat()
                entries.append(
                    (entry.name, stat.st_mtime_ns, stat.st_size)
                )
    return tuple(sorted(entries))


def list_machines() -> Dict[str, MachineSpec]:
    """Every registered machine, keyed by spec name.

    File-backed specs (with ``source`` set to their path) shadow
    same-named built-ins; two *files* claiming one name is an error.
    """
    global _registry_cache
    directory = machines_dir()
    signature = (
        _dir_signature(directory) if directory is not None else None
    )
    if (
        _registry_cache is not None
        and _registry_cache[0] == directory
        and _registry_cache[1] == signature
    ):
        return dict(_registry_cache[2])
    out = builtin_specs()
    if directory is not None:
        seen_files: Dict[str, Path] = {}
        for suffix in _SPEC_SUFFIXES:
            for path in sorted(directory.glob(f"*{suffix}")):
                spec = load_spec(path)
                if spec.name in seen_files:
                    raise SpecError(
                        f"duplicate machine name {spec.name!r}: "
                        f"{seen_files[spec.name]} and {path}"
                    )
                seen_files[spec.name] = path
                out[spec.name] = spec
    _registry_cache = (directory, signature, out)
    return dict(out)


def resolve_machine(
    token: Union[str, Path, MachineSpec]
) -> MachineSpec:
    """Resolve a ``--machine`` token to a validated spec.

    Accepts a spec instance (returned as-is), a path to a spec file, or
    a registered machine name.
    """
    if isinstance(token, MachineSpec):
        return token
    if isinstance(token, Path):
        return load_spec(token)
    looks_like_path = (
        os.sep in token
        or "/" in token
        or token.lower().endswith(_SPEC_SUFFIXES)
    )
    if looks_like_path:
        return load_spec(Path(token))
    machines = list_machines()
    try:
        return machines[token]
    except KeyError:
        raise UnknownMachineError(token, sorted(machines)) from None


_default_params: Optional[MachineParams] = None


def default_params() -> MachineParams:
    """Parameters of the registry's default machine (memoized).

    This is what "no machine specified" means everywhere: the stock
    Paxville platform, loaded through the spec layer so the file under
    ``machines/`` stays the single source of truth (the code built-in
    guarantees the same contents when the checkout is absent).
    """
    global _default_params
    if _default_params is None:
        _default_params = resolve_machine(DEFAULT_MACHINE).to_params()
    return _default_params
