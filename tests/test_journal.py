"""Tests for the write-ahead journal: lifecycle, replay, crash tears."""

import json

import pytest

from repro.supervise.journal import (
    JOURNAL_NAME,
    JOURNAL_SCHEMA,
    Journal,
    JournalError,
    JournalSchemaError,
    load_journal,
)


def write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines))


class TestJournalWriter:
    def test_open_writes_header(self, tmp_path):
        j = Journal.open(tmp_path, selected=["fig2", "fig3"], jobs=2)
        j.close()
        state = load_journal(j.path)
        assert state.header["schema"] == JOURNAL_SCHEMA
        assert state.header["selected"] == ["fig2", "fig3"]
        assert state.header["jobs"] == 2
        assert state.empty

    def test_open_truncates_previous_journal(self, tmp_path):
        j1 = Journal.open(tmp_path)
        j1.task_started("old", wave=0)
        j1.close()
        j2 = Journal.open(tmp_path)
        j2.close()
        assert load_journal(j2.path).in_flight == []

    def test_lifecycle_records_replay(self, tmp_path):
        j = Journal.open(tmp_path, selected=["a", "b", "c", "d"])
        j.task_started("a", wave=0)
        j.task_started("b", wave=0)
        j.task_finished("a", wave=0, meta={"status": "ok", "wave": 0})
        j.task_failed("b", wave=0, failure={"error_type": "ValueError"})
        j.task_skipped("c", blocked_by=["b"])
        j.task_cancelled("d", reason="signal:SIGINT")
        j.wave_committed(0)
        j.close()

        state = load_journal(j.path)
        assert state.finished == {"a": {"status": "ok", "wave": 0}}
        assert state.failed["b"]["error_type"] == "ValueError"
        assert state.skipped == {"c": ["b"]}
        assert state.cancelled == {"d": "signal:SIGINT"}
        assert state.in_flight == []
        assert state.committed_waves == [0]
        assert not state.torn
        assert not state.empty

    def test_in_flight_is_started_minus_terminal(self, tmp_path):
        j = Journal.open(tmp_path)
        j.task_started("a", wave=0)
        j.task_started("b", wave=0)
        j.task_finished("a", wave=0, meta={})
        j.close()
        assert load_journal(j.path).in_flight == ["b"]

    def test_finalize_removes_the_file(self, tmp_path):
        j = Journal.open(tmp_path)
        j.finalize("complete")
        assert not j.path.exists()

    def test_append_after_close_is_noop(self, tmp_path):
        j = Journal.open(tmp_path)
        j.close()
        j.task_started("late", wave=0)  # must not raise or resurrect
        assert load_journal(j.path).in_flight == []

    def test_context_manager_closes(self, tmp_path):
        with Journal.open(tmp_path) as j:
            j.task_started("a", wave=0)
        assert j._fh is None


class TestLoadJournalEdgeCases:
    def test_empty_file(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text("")
        state = load_journal(path)
        assert state.empty
        assert state.header is None
        assert not state.torn

    def test_torn_final_record_is_tolerated(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_lines(path, [
            json.dumps({"type": "run-started", "schema": JOURNAL_SCHEMA}),
            json.dumps({"type": "task-started", "id": "a", "wave": 0}),
            json.dumps({"type": "task-finished", "id": "a", "wave": 0,
                        "meta": {"status": "ok"}}),
        ])
        # Simulate the write a SIGKILL interrupted: half a JSON record.
        with open(path, "a") as fh:
            fh.write('{"type": "task-fini')
        state = load_journal(path)
        assert state.torn
        assert state.finished == {"a": {"status": "ok"}}

    def test_torn_middle_record_is_refused(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_lines(path, [
            json.dumps({"type": "run-started", "schema": JOURNAL_SCHEMA}),
            "not json at all",
            json.dumps({"type": "task-started", "id": "a", "wave": 0}),
        ])
        with pytest.raises(JournalError, match="line 2"):
            load_journal(path)

    def test_non_object_record_is_refused(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_lines(path, ["[1, 2, 3]", json.dumps({"type": "x"})])
        with pytest.raises(JournalError, match="not a record"):
            load_journal(path)

    def test_newer_schema_is_refused_loudly(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_lines(path, [
            json.dumps({
                "type": "run-started", "schema": JOURNAL_SCHEMA + 1,
            }),
        ])
        with pytest.raises(JournalSchemaError, match="newer"):
            load_journal(path)

    def test_unknown_record_types_are_skipped(self, tmp_path):
        # Additive records from an older-or-equal schema must not break
        # this reader.
        path = tmp_path / JOURNAL_NAME
        write_lines(path, [
            json.dumps({"type": "run-started", "schema": JOURNAL_SCHEMA}),
            json.dumps({"type": "heartbeat", "t": 12.5}),
            json.dumps({"type": "task-finished", "id": "a", "wave": 0,
                        "meta": {"status": "ok"}}),
        ])
        state = load_journal(path)
        assert state.finished == {"a": {"status": "ok"}}

    def test_missing_file_raises_journal_error(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            load_journal(tmp_path / JOURNAL_NAME)

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_lines(path, [
            json.dumps({"type": "run-started", "schema": JOURNAL_SCHEMA}),
            "",
            json.dumps({"type": "run-finished", "status": "complete"}),
        ])
        state = load_journal(path)
        assert state.run_finished == "complete"
