"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for needle in ("fig2", "fig3", "table2", "fig4", "fig5",
                       "sec3-lmbench", "tuning", "efficiency"):
            assert needle in out

    def test_speedup_query(self, capsys):
        assert main(["speedup", "ep", "ht_off_4_2"]) == 0
        out = capsys.readouterr().out
        assert "EP on ht_off_4_2" in out
        assert "x over serial" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "CMP-based SMP" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_run_all_writes_files(self, tmp_path, capsys):
        # Restrict to a cheap subset by monkeypatching would touch
        # internals; instead verify the directory handling with the
        # registry's cheapest entry via 'run' + manual write.
        assert main(["run", "omp-overheads"]) == 0
        out = capsys.readouterr().out
        assert "OpenMP construct overheads" in out

    def test_csv_export(self, tmp_path, capsys):
        from repro.cli import _export_csv

        _export_csv(tmp_path)
        fig3 = (tmp_path / "fig3_speedup.csv").read_text()
        assert fig3.startswith("benchmark,")
        assert (tmp_path / "fig2_cpi.csv").exists()

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
