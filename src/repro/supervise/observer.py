"""The engine-side supervision hook: a cooperative checkpoint observer.

:class:`SupervisionObserver` is an ordinary
:class:`~repro.sim.observer.SimObserver` — the same mechanism the
timeline, phase log, and invariant auditor use — attached by the
engine whenever supervision is active (a budget is armed, a task
deadline is in force, or signal handlers are routing into the cancel
token).  At every resolver step and phase boundary it calls
:func:`repro.supervise.check`, which raises
:class:`~repro.supervise.cancel.CancelledRun` or
:class:`~repro.supervise.budget.DeadlineExceeded` with provenance.

This is *cooperative* enforcement: it bounds simulated work at its
natural step granularity with one clock read per step, and it cannot
free a worker stuck outside the step loop — that is the pool
watchdog's job (:func:`repro.sim.parallel.parallel_map`).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.sim.observer import PhaseEvent, ResolveEvent, SimObserver

__all__ = ["SupervisionObserver"]


class SupervisionObserver(SimObserver):
    """Checks the deadline/cancellation state at step boundaries."""

    def __init__(self, check: Optional[Callable[[str], None]] = None):
        if check is None:
            # Late import: this module is re-exported by the package
            # __init__, so the package may still be initializing here.
            from repro import supervise

            check = supervise.check
        self._check = check

    def on_run_start(self, specs: Sequence) -> None:
        self._check("run-start")

    def on_resolve(self, event: ResolveEvent) -> None:
        self._check(f"step {event.step}")

    def on_phase_complete(self, event: PhaseEvent) -> None:
        self._check(f"phase {event.phase_name!r}")
