"""RZBENCH-style low-level kernels: vector triad and strided load.

RZBENCH (arXiv:0712.3389) characterizes an architecture with a ladder of
low-level kernels *before* looking at applications; the two modeled here
bracket the memory system:

* **triad** — the Schoenauer vector triad ``A(i) = B(i) + s * C(i)``,
  the canonical bandwidth probe: three long streams, perfect spatial
  locality, repetitions over arrays far larger than any cache.
* **strided-load** — a load sweep at a fixed byte stride, the spatial
  locality probe: at one word per line the stream degenerates to a miss
  per access and defeats the stride prefetcher's bandwidth advantage.

Both producers take explicit knobs (``elements``, ``mem_ops_per_instr``,
``stride_bytes``) because the metamorphic suite drives them as dials:
larger working sets must never produce fewer last-level misses, and a
more memory-bound mix must never run faster on a fixed machine.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Tuple

from repro.npb.common import BYTES_PER_UOP, ProblemClass, check_class
from repro.trace.patterns import AccessMix, RandomPattern, StreamingPattern
from repro.trace.phase import Phase, Workload
from repro.workload.spec import WorkloadSpec

#: (doubles per array, repetitions) — sized so every class streams for a
#: comparable uop volume (work scales linearly, reach geometrically).
_TRIAD_DIMS: Dict[ProblemClass, Tuple[int, int]] = {
    ProblemClass.S: (2 ** 14, 400),
    ProblemClass.W: (2 ** 17, 200),
    ProblemClass.A: (2 ** 21, 100),
    ProblemClass.B: (2 ** 24, 60),
    ProblemClass.C: (2 ** 26, 40),
}

_STRIDED_DIMS: Dict[ProblemClass, Tuple[int, int]] = {
    ProblemClass.S: (2 ** 15, 400),
    ProblemClass.W: (2 ** 18, 200),
    ProblemClass.A: (2 ** 22, 100),
    ProblemClass.B: (2 ** 25, 60),
    ProblemClass.C: (2 ** 27, 40),
}

#: uops per element per sweep (2 loads + 1 store + FMA + loop control).
_TRIAD_UOPS_PER_ELEMENT = 5.0
#: uops per element per sweep (load + index update + loop control).
_STRIDED_UOPS_PER_ELEMENT = 4.0

_SCALARS = RandomPattern(
    footprint_bytes=512.0,      # loop counters and the scalar s
    partitioned=False,
    shared_fraction=1.0,
)


def _kernel_phase(
    name: str,
    instructions: float,
    mem_ops_per_instr: float,
    load_fraction: float,
    mix: AccessMix,
    ilp: float,
    prefetchability: float,
    repetitions: int,
    inner_trip: float,
    mlp: float,
) -> Phase:
    # One tight loop nest: tiny code, few branch sites, long trips that
    # OpenMP static chunking divides across the team.
    return Phase(
        name=name,
        instructions=instructions,
        mem_ops_per_instr=mem_ops_per_instr,
        load_fraction=load_fraction,
        access_mix=mix,
        code_footprint_uops=150.0,
        code_footprint_bytes=150.0 * BYTES_PER_UOP,
        branches_per_instr=0.05,
        branch_misp_intrinsic=0.0005,
        branch_sites=24,
        ilp=ilp,
        parallel=True,
        imbalance=0.0,
        prefetchability=prefetchability,
        barriers=1,
        iterations=repetitions,
        inner_trip_count=inner_trip,
        trip_divides=True,
        branch_history_sensitivity=0.05,
        smt_capacity=1.1,
        mlp=mlp,
    )


def _clamped_mem_ops(value: float) -> float:
    if not 0.0 < value <= 1.0:
        raise ValueError(
            f"mem_ops_per_instr must be within (0, 1], got {value}"
        )
    return float(value)


def triad_build(
    problem_class: ProblemClass = ProblemClass.B,
    elements: Optional[int] = None,
    repetitions: Optional[int] = None,
    mem_ops_per_instr: Optional[float] = None,
) -> Workload:
    """A(i) = B(i) + s * C(i) over three ``elements``-double arrays."""
    n0, reps0 = check_class(problem_class, _TRIAD_DIMS)
    n = int(elements) if elements is not None else n0
    reps = int(repetitions) if repetitions is not None else reps0
    if n < 1 or reps < 1:
        raise ValueError("elements and repetitions must be positive")
    streams = StreamingPattern(
        footprint_bytes=3.0 * 8.0 * n,   # A, B and C together
        partitioned=True,
        shared_fraction=0.0,
        stride_bytes=8,
        passes=float(reps),
    )
    phase = _kernel_phase(
        name="triad",
        instructions=float(n) * reps * _TRIAD_UOPS_PER_ELEMENT,
        mem_ops_per_instr=(
            _clamped_mem_ops(mem_ops_per_instr)
            if mem_ops_per_instr is not None else 0.6
        ),
        load_fraction=2.0 / 3.0,
        mix=AccessMix.of((0.97, streams), (0.03, _SCALARS)),
        ilp=1.8,
        prefetchability=0.95,
        repetitions=reps,
        inner_trip=float(n),
        mlp=6.0,
    )
    return Workload(
        name="triad", problem_class=problem_class.value, phases=(phase,)
    )


def strided_load_build(
    problem_class: ProblemClass = ProblemClass.B,
    elements: Optional[int] = None,
    repetitions: Optional[int] = None,
    stride_bytes: int = 128,
    mem_ops_per_instr: Optional[float] = None,
) -> Workload:
    """Load sweep over one array at a fixed byte stride."""
    n0, reps0 = check_class(problem_class, _STRIDED_DIMS)
    n = int(elements) if elements is not None else n0
    reps = int(repetitions) if repetitions is not None else reps0
    stride = int(stride_bytes)
    if n < 1 or reps < 1:
        raise ValueError("elements and repetitions must be positive")
    if stride < 8:
        raise ValueError(f"stride_bytes must be >= 8, got {stride}")
    sweep = StreamingPattern(
        footprint_bytes=8.0 * n,
        partitioned=True,
        shared_fraction=0.0,
        stride_bytes=stride,
        passes=float(reps),
    )
    # The stride prefetcher tracks short strides well; past a line it
    # degrades toward a demand-miss stream.
    prefetch = 0.9 if stride <= 64 else (0.65 if stride <= 128 else 0.45)
    phase = _kernel_phase(
        name="strided_load",
        instructions=float(n) * reps * _STRIDED_UOPS_PER_ELEMENT,
        mem_ops_per_instr=(
            _clamped_mem_ops(mem_ops_per_instr)
            if mem_ops_per_instr is not None else 0.5
        ),
        load_fraction=1.0,
        mix=AccessMix.of((0.97, sweep), (0.03, _SCALARS)),
        ilp=1.6,
        prefetchability=prefetch,
        repetitions=reps,
        inner_trip=float(n),
        mlp=4.0,
    )
    return Workload(
        name="strided-load",
        problem_class=problem_class.value,
        phases=(phase,),
    )


@functools.lru_cache(maxsize=64)
def _triad_spec_cached(problem_class, elements, repetitions, mem_ops):
    return WorkloadSpec.from_workload(
        triad_build(
            problem_class,
            elements=elements,
            repetitions=repetitions,
            mem_ops_per_instr=mem_ops,
        ),
        description=(
            "RZBENCH vector triad A=B+s*C: three-stream bandwidth probe"
        ),
        kind="kernel",
        memory_bound_score=0.95,
    )


def triad_spec(
    problem_class: ProblemClass = ProblemClass.B,
    elements: Optional[int] = None,
    repetitions: Optional[int] = None,
    mem_ops_per_instr: Optional[float] = None,
) -> WorkloadSpec:
    """The registry producer for ``triad`` (memoized per parameters)."""
    return _triad_spec_cached(
        problem_class, elements, repetitions, mem_ops_per_instr
    )


@functools.lru_cache(maxsize=64)
def _strided_spec_cached(problem_class, elements, repetitions, stride, mem_ops):
    return WorkloadSpec.from_workload(
        strided_load_build(
            problem_class,
            elements=elements,
            repetitions=repetitions,
            stride_bytes=stride,
            mem_ops_per_instr=mem_ops,
        ),
        description=(
            "RZBENCH strided load sweep: spatial-locality and "
            "prefetcher probe"
        ),
        kind="kernel",
        memory_bound_score=0.9,
    )


def strided_load_spec(
    problem_class: ProblemClass = ProblemClass.B,
    elements: Optional[int] = None,
    repetitions: Optional[int] = None,
    stride_bytes: int = 128,
    mem_ops_per_instr: Optional[float] = None,
) -> WorkloadSpec:
    """The registry producer for ``strided-load``."""
    return _strided_spec_cached(
        problem_class, elements, repetitions, int(stride_bytes),
        mem_ops_per_instr,
    )
