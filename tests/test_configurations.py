"""Tests for the paper's Table-1 configurations."""

import pytest

from repro.machine.configurations import (
    Architecture,
    CONFIGURATIONS,
    COMPARISON_GROUPS,
    get_config,
    multithreaded_configs,
)


class TestTable1:
    def test_eight_configurations(self):
        assert len(CONFIGURATIONS) == 8

    @pytest.mark.parametrize(
        "name,ht,threads,chips,n_ctx,arch",
        [
            ("serial", False, 1, 1, 1, Architecture.SERIAL),
            ("ht_on_2_1", True, 2, 1, 2, Architecture.SMT),
            ("ht_off_2_1", False, 2, 1, 2, Architecture.CMP),
            ("ht_on_4_1", True, 4, 1, 4, Architecture.CMT),
            ("ht_off_2_2", False, 2, 2, 2, Architecture.SMP),
            ("ht_on_4_2", True, 4, 2, 4, Architecture.SMT_BASED_SMP),
            ("ht_off_4_2", False, 4, 2, 4, Architecture.CMP_BASED_SMP),
            ("ht_on_8_2", True, 8, 2, 8, Architecture.CMT_BASED_SMP),
        ],
    )
    def test_rows(self, name, ht, threads, chips, n_ctx, arch):
        cfg = get_config(name)
        assert cfg.ht is ht
        assert cfg.n_threads == threads
        assert cfg.n_chips == chips
        assert cfg.n_contexts == n_ctx
        assert cfg.architecture is arch

    def test_cmt_contexts_are_one_chip(self):
        cfg = get_config("ht_on_4_1")
        topo = cfg.topology()
        assert topo.n_chips == 1
        assert topo.n_cores == 2

    def test_smt_smp_contexts_span_chips_one_core_each(self):
        cfg = get_config("ht_on_4_2")
        topo = cfg.topology()
        assert topo.n_chips == 2
        assert topo.n_cores == 2  # one core per chip, both siblings

    def test_paper_labels(self):
        assert get_config("ht_on_4_1").paper_label == "HTon-2-4-1"
        assert get_config("serial").paper_label == "Serial"

    def test_topology_matches_context_labels(self):
        for cfg in CONFIGURATIONS.values():
            topo = cfg.topology()
            assert {c.label for c in topo.contexts} == set(cfg.context_labels)

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_config("ht_on_16_4")

    def test_multithreaded_excludes_serial(self):
        names = [c.name for c in multithreaded_configs()]
        assert "serial" not in names
        assert len(names) == 7


class TestGroups:
    def test_four_groups(self):
        assert set(COMPARISON_GROUPS) == {
            "group1", "group2", "group3", "group4"
        }

    def test_group_membership(self):
        assert COMPARISON_GROUPS["group2"] == ["ht_off_2_1", "ht_on_4_1"]
        assert COMPARISON_GROUPS["group4"] == ["ht_off_4_2", "ht_on_8_2"]

    def test_groups_reference_real_configs(self):
        for members in COMPARISON_GROUPS.values():
            for name in members:
                assert name in CONFIGURATIONS
