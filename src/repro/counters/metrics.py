"""Derived metrics — the exact quantities the paper's figures plot."""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.collector import CounterSet
from repro.counters.events import Event


@dataclass(frozen=True)
class DerivedMetrics:
    """One column of the paper's Figure 2 / Figure 4 panels.

    Attributes mirror panel titles:
        l1_miss_rate, l2_miss_rate, tc_miss_rate: cache miss rates.
        itlb_miss_rate: ITLB misses / ITLB lookups.
        dtlb_misses: absolute DTLB load+store misses (the paper plots
            these normalized to the serial run — normalization happens at
            report time when the serial baseline is known).
        stall_fraction: % of execution cycles spent stalled.
        branch_prediction_rate: 1 - mispredict rate (in %, 0..100 when
            formatted).
        prefetch_bus_fraction: prefetch transactions / all transactions.
        cpi: cycles per retired uop.
    """

    l1_miss_rate: float
    l2_miss_rate: float
    tc_miss_rate: float
    itlb_miss_rate: float
    dtlb_misses: float
    stall_fraction: float
    branch_prediction_rate: float
    prefetch_bus_fraction: float
    cpi: float

    def normalized_dtlb(self, serial_baseline: "DerivedMetrics") -> float:
        """DTLB misses normalized to a serial run (Fig. 2/4 panel 5)."""
        if serial_baseline.dtlb_misses <= 0:
            return 0.0
        return self.dtlb_misses / serial_baseline.dtlb_misses


def derive_metrics(counters: CounterSet) -> DerivedMetrics:
    """Compute the paper's metrics from raw event counts."""
    bus_total = counters.get(Event.BUS_TRANS_DEMAND) + counters.get(
        Event.BUS_TRANS_PREFETCH
    )
    return DerivedMetrics(
        l1_miss_rate=counters.ratio(Event.L1D_MISS, Event.L1D_ACCESS),
        l2_miss_rate=counters.ratio(Event.L2_MISS, Event.L2_ACCESS),
        tc_miss_rate=counters.ratio(Event.TC_MISS, Event.TC_DELIVER),
        itlb_miss_rate=counters.ratio(Event.ITLB_MISS, Event.ITLB_ACCESS),
        dtlb_misses=counters.get(Event.DTLB_MISS),
        stall_fraction=counters.ratio(Event.STALL_CYCLES, Event.CYCLES),
        branch_prediction_rate=1.0
        - counters.ratio(Event.BRANCH_MISPRED, Event.BRANCH_RETIRED),
        prefetch_bus_fraction=(
            counters.get(Event.BUS_TRANS_PREFETCH) / bus_total if bus_total else 0.0
        ),
        cpi=counters.ratio(Event.CYCLES, Event.INSTR_RETIRED),
    )
