"""Cycles-per-instruction accounting and SMT issue-slot contention.

``CPI = CPI_exec + sum(exposed stalls per uop)`` where the exposed stall
components are:

* L2-hit latency for L1 misses that hit L2 (largely hidden by the
  out-of-order window; only a fraction is exposed),
* DRAM latency for L2 misses, divided by the core's memory-level
  parallelism (except for serialized pointer-chase loads), multiplied by
  the bus queueing factor, and reduced by prefetch coverage,
* trace-cache miss decode penalty,
* ITLB/DTLB walk penalties,
* branch mispredict pipeline flushes,
* memory-order machine clears.

SMT contention: two sibling contexts share one core's execution
resources.  A thread's *occupancy* ``U`` is the fraction of its cycles
spent executing rather than stalled (``CPI_exec / CPI_total``): a
compute-bound thread occupies the core every cycle (U ~ 1) while a
memory-bound thread leaves it mostly idle (U ~ 0.1).  Two siblings
co-exist without penalty while their combined occupancy fits within the
core's SMT capacity (~1.25 of a single thread's throughput — NetBurst
shares the scheduler, replay queues and execution ports); beyond that,
execution cycles dilate by ``(U1 + U2) / capacity``.  Hyper-Threading
also statically partitions queues/buffers, costing every thread a fixed
``smt_partition_penalty`` whenever HT is enabled — even with an idle
sibling (the paper's HT-on single-program configurations pay this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.params import MachineParams
from repro.mem.hierarchy import LevelRates
from repro.trace.phase import Phase

#: Fraction of an L2-hit latency the out-of-order window fails to hide.
_L2_HIT_EXPOSURE = 0.30
#: Fraction of a covered (prefetched) miss that still stalls (late
#: prefetches, L2-hit latency of the prefetched line).
_COVERED_EXPOSURE = 0.35


@dataclass(frozen=True)
class CPIBreakdown:
    """Per-uop cycle accounting for one context in one phase."""

    cpi_exec: float
    stall_l2_hit: float
    stall_memory: float
    stall_trace_cache: float
    stall_itlb: float
    stall_dtlb: float
    stall_branch: float
    stall_moclear: float
    stall_coherence: float
    smt_slowdown: float

    @property
    def stall_per_instr(self) -> float:
        return (
            self.stall_l2_hit
            + self.stall_memory
            + self.stall_trace_cache
            + self.stall_itlb
            + self.stall_dtlb
            + self.stall_branch
            + self.stall_moclear
            + self.stall_coherence
        )

    @property
    def cpi(self) -> float:
        """Effective CPI including SMT issue contention."""
        return self.cpi_exec * self.smt_slowdown + self.stall_per_instr

    @property
    def stall_fraction(self) -> float:
        """Fraction of cycles spent stalled (the paper's '% stalled')."""
        return self.stall_per_instr / self.cpi if self.cpi else 0.0


#: Default combined sibling throughput a NetBurst core sustains, relative
#: to one thread alone (empirically ~1.2-1.3x for mixed compute pairs).
SMT_CAPACITY = 1.25


def smt_issue_slowdown(
    util_self: float, util_sibling: float, capacity: float = SMT_CAPACITY
) -> float:
    """Execution-cycle dilation for a thread sharing a core.

    Args:
        util_self: this thread's solo pipeline occupancy (0..1), i.e. the
            fraction of cycles it executes rather than stalls.
        util_sibling: the sibling's solo occupancy (0 when idle).
        capacity: combined throughput the pair can extract from the core
            (workload dependent; 1.0 when both saturate one unit).

    Returns:
        Multiplier (>= 1) on the thread's execution CPI.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if util_sibling <= 0.0:
        # Idle sibling: the thread has the whole core; pair capacity does
        # not apply.
        return 1.0
    demand = util_self + util_sibling
    return max(1.0, demand / capacity)


class PipelineModel:
    """Computes CPI breakdowns for contexts on one machine."""

    def __init__(self, params: MachineParams):
        self.params = params

    def issue_width(self, ht_enabled: bool) -> float:
        """Per-thread sustainable issue width given the HT partition."""
        w = self.params.core.issue_width
        if ht_enabled:
            w *= 1.0 - self.params.core.smt_partition_penalty
        return w

    def solo_utilization(self, phase: Phase, ht_enabled: bool) -> float:
        """Estimate a thread's pipeline occupancy running alone.

        Occupancy is the fraction of cycles spent executing rather than
        stalled (``CPI_exec / CPI_total``), computed from a provisional
        CPI that ignores contention — it only needs to rank compute- vs
        memory-bound threads for the SMT contention split.
        """
        width = self.issue_width(ht_enabled)
        cpi_exec = 1.0 / min(phase.ilp, width)
        # Provisional stall estimate from the phase's mixture on private
        # caches: enough to classify boundness.
        l1 = phase.access_mix.miss_rate(
            self.params.l1d.size_bytes, self.params.l1d.line_bytes
        )
        llc = self.params.llc
        l2 = phase.access_mix.miss_rate(llc.size_bytes, llc.line_bytes)
        mem_stall = (
            phase.mem_ops_per_instr
            * l2
            * self.params.memory_latency_cycles
            / self.params.core.mlp
        )
        l2_stall = (
            phase.mem_ops_per_instr
            * max(l1 - l2, 0.0)
            * llc.latency_cycles
            * _L2_HIT_EXPOSURE
        )
        cpi = cpi_exec + mem_stall + l2_stall
        return min(1.0, cpi_exec / cpi)

    def effective_mlp(
        self,
        phase: Phase,
        core_sharers: int = 1,
        sibling_miss_ratio: float = 1.0,
    ) -> float:
        """Memory-level parallelism a thread sustains for ``phase``.

        HT siblings share the core's load/store and miss buffers,
        shrinking the overlap each thread can sustain — in proportion to
        how hard the sibling actually drives those buffers.
        """
        p = self.params
        dep_frac = phase.access_mix.dependent_fraction()
        base_mlp = phase.mlp if phase.mlp > 0 else p.core.mlp
        mlp = base_mlp * (1.0 - dep_frac) + 1.0 * dep_frac
        return mlp / (
            1.0
            + p.core.mlp_smt_share
            * sibling_miss_ratio
            * max(core_sharers - 1, 0)
        )

    def breakdown(
        self,
        phase: Phase,
        rates: LevelRates,
        mispredict_rate: float,
        bus_latency_multiplier: float = 1.0,
        prefetch_coverage: float = 0.0,
        ht_enabled: bool = False,
        sibling_utilization: float = 0.0,
        self_utilization: Optional[float] = None,
        core_sharers: int = 1,
        smt_capacity: float = SMT_CAPACITY,
        coherence_stall_per_instr: float = 0.0,
        sibling_miss_ratio: float = 1.0,
        memory_latency_scale: float = 1.0,
    ) -> CPIBreakdown:
        """Full cycle accounting for one context executing ``phase``.

        Args:
            phase: executed phase.
            rates: resolved hierarchy rates (sharing already applied).
            mispredict_rate: per-branch mispredict probability.
            bus_latency_multiplier: queueing factor on DRAM latency.
            prefetch_coverage: fraction of L2 misses covered by prefetch.
            ht_enabled: HT active on this core (partition penalty).
            sibling_utilization: solo issue utilization of a busy sibling
                (0 when the sibling context is idle).
            coherence_stall_per_instr: exposed cycles per uop from MESI
                transfers (computed by the engine from the phase's halo
                traffic and the team's physical span).
            self_utilization: precomputed solo utilization of this thread;
                derived from the phase when omitted.
            core_sharers: active contexts on this core; a busy sibling
                consumes part of the shared miss buffers, reducing this
                thread's memory-level parallelism.
            smt_capacity: combined pair throughput for the issue model.
            sibling_miss_ratio: the sibling's miss intensity relative to
                this thread's (0..1) — a compute-bound sibling barely
                occupies the shared miss buffers.
            memory_latency_scale: NUMA tier multiplier on the DRAM
                latency (1.0 for local/UMA accesses).
        """
        p = self.params
        width = self.issue_width(ht_enabled)
        cpi_exec = 1.0 / min(phase.ilp, width)

        l2_hit_per_instr = max(
            rates.l1_misses_per_instr - rates.l2_misses_per_instr, 0.0
        )
        stall_l2_hit = (
            l2_hit_per_instr * p.l2.latency_cycles * _L2_HIT_EXPOSURE
        )
        # Hits in levels beyond the L2 expose the same window-hidden
        # fraction of that level's (longer) latency.
        for lvl in rates.extra_levels:
            lvl_hits = max(
                lvl.accesses_per_instr - lvl.misses_per_instr, 0.0
            )
            stall_l2_hit += lvl_hits * lvl.latency_cycles * _L2_HIT_EXPOSURE

        llc_misses = rates.llc_misses_per_instr
        llc_latency = p.llc.latency_cycles
        mem_lat = (
            p.memory_latency_cycles
            * memory_latency_scale
            * bus_latency_multiplier
        )
        mlp = self.effective_mlp(phase, core_sharers, sibling_miss_ratio)
        uncovered = llc_misses * (1.0 - prefetch_coverage)
        covered = llc_misses * prefetch_coverage
        stall_memory = (
            uncovered * mem_lat / mlp
            + covered * llc_latency * _COVERED_EXPOSURE
        )

        stall_tc = rates.tc_misses_per_instr * p.core.trace_cache_miss_penalty
        stall_itlb = rates.itlb_misses_per_instr * p.itlb.miss_penalty_cycles
        stall_dtlb = rates.dtlb_misses_per_instr * p.dtlb.miss_penalty_cycles
        stall_branch = (
            phase.branches_per_instr
            * mispredict_rate
            * p.branch.mispredict_penalty_cycles
        )
        stall_moclear = (
            phase.moclears_per_kinstr / 1000.0 * p.core.moclear_penalty_cycles
        )

        u_self = (
            self_utilization
            if self_utilization is not None
            else self.solo_utilization(phase, ht_enabled)
        )
        slowdown = smt_issue_slowdown(u_self, sibling_utilization, smt_capacity)

        return CPIBreakdown(
            cpi_exec=cpi_exec,
            stall_l2_hit=stall_l2_hit,
            stall_memory=stall_memory,
            stall_trace_cache=stall_tc,
            stall_itlb=stall_itlb,
            stall_dtlb=stall_dtlb,
            stall_branch=stall_branch,
            stall_moclear=stall_moclear,
            stall_coherence=coherence_stall_per_instr,
            smt_slowdown=slowdown,
        )
