"""Extension: thread-count scalability curves.

The paper fixes the thread count to the visible contexts of each
configuration; this study sweeps OMP_NUM_THREADS from 1 to the full
context count on the two full-machine configurations (HT off 2-4-2 and
HT on 2-8-2), exposing each benchmark's scalability knee — where the
bus saturates (CG/MG/SP), where sync costs bite (LU), and where only
EP keeps climbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.report import format_table
from repro.analysis.result import ExperimentResult
from repro.core.context import RunContext, as_context
from repro.core.study import Study
from repro.machine.configurations import get_config
from repro.sim.engine import Engine


@dataclass
class ScalingCurvesResult(ExperimentResult):
    """benchmark -> config -> [speedup at 1..N threads]."""

    curves: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    thread_counts: Dict[str, List[int]] = field(default_factory=dict)

    def knee(self, benchmark: str, config: str,
             threshold: float = 0.10) -> int:
        """Smallest thread count beyond which adding threads gains less
        than ``threshold`` fractional speedup."""
        curve = self.curves[benchmark][config]
        counts = self.thread_counts[config]
        for i in range(1, len(curve)):
            if curve[i] / curve[i - 1] - 1.0 < threshold:
                return counts[i - 1]
        return counts[-1]


def run(
    ctx: Union[RunContext, Study, None] = None,
    benchmarks: Optional[Sequence[str]] = None,
    configs: Sequence[str] = ("ht_off_4_2", "ht_on_8_2"),
    problem_class: Optional[str] = None,
) -> ScalingCurvesResult:
    """Sweep thread counts on the full-machine configurations."""
    ctx = as_context(ctx)
    study = ctx.study(problem_class=problem_class)
    benches = list(benchmarks or ctx.workload_names())
    result = ScalingCurvesResult()
    for cfg_name in configs:
        cfg = get_config(cfg_name)
        counts = [t for t in (1, 2, 4, 8) if t <= cfg.n_contexts]
        result.thread_counts[cfg_name] = counts
    for bench in benches:
        serial = study.serial_runtime(bench)
        workload = study.workload(bench)
        result.curves[bench] = {}
        for cfg_name in configs:
            engine = Engine(get_config(cfg_name))
            curve = []
            for t in result.thread_counts[cfg_name]:
                rt = engine.run_single(workload, n_threads=t).runtime_seconds
                curve.append(serial / rt)
            result.curves[bench][cfg_name] = curve
    return result


def report(result: ScalingCurvesResult) -> str:
    parts = []
    for cfg, counts in result.thread_counts.items():
        rows = []
        for bench in sorted(result.curves):
            rows.append(
                [bench]
                + result.curves[bench][cfg]
                + [result.knee(bench, cfg)]
            )
        parts.append(format_table(
            ["benchmark"] + [f"{t} thr" for t in counts] + ["knee"],
            rows,
            title=f"Scalability on {cfg} (speedup over serial)",
            float_fmt="%.2f",
        ))
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
