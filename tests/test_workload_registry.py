"""Tests for the named workload registry (repro.workload.registry).

Mirrors the machine-registry suite: listing contents, case-insensitive
resolution, did-you-mean suggestions, ``REPRO_WORKLOADS_DIR`` overrides
(shadowing, duplicate rejection, edit invalidation), inheritance across
files and built-ins, and the Study integration (content-addressed
run-cache tokens, stale-fingerprint detection).
"""

import json

import pytest

from repro.core.study import Study
from repro.npb.suite import ALL_BENCHMARKS
from repro.workload.registry import (
    UnknownWorkloadError,
    build_workload,
    builtin_producers,
    list_workloads,
    resolve_workload,
)
from repro.workload.spec import WorkloadSpecError


def _write_spec(path, name, base=None, scale=None, description=""):
    tree = {"schema": 1, "name": name, "description": description}
    if base is not None:
        tree["base"] = base
        if scale is not None:
            tree["workload"] = {"scale": scale}
    else:
        tree["workload"] = {
            "problem_class": "B",
            "phases": [{
                "name": "only",
                "openmp": "parallel",
                "instructions": 1e9,
                "mem_ops_per_instr": 0.4,
                "access_mix": [{
                    "kind": "streaming",
                    "weight": 1.0,
                    "footprint_bytes": 2 ** 24,
                }],
                "code_footprint_uops": 5000.0,
                "code_footprint_bytes": 12000.0,
                "branches_per_instr": 0.1,
                "branch_misp_intrinsic": 0.01,
                "branch_sites": 40,
                "ilp": 1.5,
            }],
        }
    path.write_text(json.dumps(tree))
    return path


class TestBuiltins:
    def test_every_nas_benchmark_plus_families(self):
        names = set(list_workloads("B"))
        assert set(ALL_BENCHMARKS) <= names
        assert {"minigmg", "triad", "strided-load"} <= names

    def test_producers_are_class_parameterized(self):
        small = list_workloads("S")["CG"]
        big = list_workloads("B")["CG"]
        assert small.build().problem_class == "S"
        assert big.build().problem_class == "B"
        assert small.fingerprint != big.fingerprint

    def test_builtin_sources_are_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        for spec in list_workloads("B").values():
            assert spec.source is None

    def test_builtin_producers_cover_listing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        assert set(builtin_producers()) == set(list_workloads("B"))

    def test_checked_in_specs_join_the_listing(self):
        specs = list_workloads("B")
        for name in ("minigmg-c", "triad-l2", "strided-512"):
            assert name in specs
            assert specs[name].source is not None


class TestResolution:
    def test_case_insensitive_nas_names(self):
        assert resolve_workload("cg").name == "CG"
        assert resolve_workload("CG").name == "CG"

    def test_spec_instances_pass_through(self):
        spec = resolve_workload("triad")
        assert resolve_workload(spec) is spec

    def test_path_tokens_load_files(self, tmp_path):
        path = _write_spec(tmp_path / "custom.json", "custom")
        assert resolve_workload(path).name == "custom"
        assert resolve_workload(str(path)).name == "custom"

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownWorkloadError) as info:
            resolve_workload("triadd")
        assert "did you mean 'triad'" in str(info.value)
        assert "minigmg" in str(info.value)

    def test_build_workload_returns_engine_form(self):
        wl = build_workload("minigmg", "B")
        assert wl.name == "minigmg"
        assert len(wl.phases) >= 2


class TestWorkloadsDir:
    def test_file_specs_join_the_listing(self, tmp_path, monkeypatch):
        _write_spec(tmp_path / "custom.json", "custom")
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        specs = list_workloads("B")
        assert "custom" in specs
        assert specs["custom"].source == tmp_path / "custom.json"

    def test_file_shadows_builtin(self, tmp_path, monkeypatch):
        _write_spec(tmp_path / "triad.json", "triad")
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        spec = resolve_workload("triad")
        assert spec.source == tmp_path / "triad.json"

    def test_duplicate_names_across_files_rejected(self, tmp_path, monkeypatch):
        _write_spec(tmp_path / "a.json", "dup")
        _write_spec(tmp_path / "b.json", "dup")
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        with pytest.raises(WorkloadSpecError, match="duplicate workload name"):
            list_workloads("B")

    def test_edits_invalidate_the_cache(self, tmp_path, monkeypatch):
        path = _write_spec(tmp_path / "custom.json", "custom")
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        before = resolve_workload("custom").fingerprint
        tree = json.loads(path.read_text())
        tree["workload"]["phases"][0]["instructions"] = 2e9
        path.write_text(json.dumps(tree))
        # Force a visible mtime change even on coarse filesystems.
        import os
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        after = resolve_workload("custom").fingerprint
        assert after != before

    def test_file_can_inherit_from_builtin(self, tmp_path, monkeypatch):
        _write_spec(
            tmp_path / "triad-short.json", "triad-short",
            base="triad", scale=0.25,
        )
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        derived = resolve_workload("triad-short")
        base = resolve_workload("triad")
        assert derived.build().total_instructions == pytest.approx(
            base.build().total_instructions * 0.25
        )

    def test_file_can_inherit_from_file(self, tmp_path, monkeypatch):
        _write_spec(tmp_path / "root.json", "root")
        _write_spec(
            tmp_path / "leaf.json", "leaf", base="root", scale=2.0
        )
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        specs = list_workloads("B")
        assert specs["leaf"].build().total_instructions == pytest.approx(
            specs["root"].build().total_instructions * 2.0
        )

    def test_inheritance_cycle_detected(self, tmp_path, monkeypatch):
        _write_spec(tmp_path / "a.json", "a", base="b", scale=1.0)
        _write_spec(tmp_path / "b.json", "b", base="a", scale=1.0)
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        with pytest.raises(WorkloadSpecError, match="cycle"):
            list_workloads("B")

    def test_unknown_base_lists_registered(self, tmp_path, monkeypatch):
        _write_spec(tmp_path / "x.json", "x", base="no-such", scale=1.0)
        monkeypatch.setenv("REPRO_WORKLOADS_DIR", str(tmp_path))
        with pytest.raises(WorkloadSpecError, match="unknown base workload"):
            list_workloads("B")


class TestStudyIntegration:
    def test_nas_run_keys_unchanged(self):
        st = Study("B")
        assert st.workload_key("cg") == "CG"
        assert st.workload_key("CG") == "CG"

    def test_registry_tokens_are_content_addressed(self):
        st = Study("B")
        spec = resolve_workload("triad")
        token = st.workload_key("triad")
        assert token == f"triad@{spec.short_fingerprint}"
        # The token itself resolves (the batched prefetch path replays
        # recorded keys against fresh studies).
        assert Study("B").workload(token) == spec.build()

    def test_stale_fingerprint_rejected(self):
        st = Study("B")
        with pytest.raises(RuntimeError, match="changed while its runs"):
            st.workload("triad@000000000000")

    def test_unknown_workload_from_study(self):
        with pytest.raises(UnknownWorkloadError, match="unknown workload"):
            Study("B").workload("no-such-workload")

    def test_registry_workload_runs_and_caches(self):
        # An earlier test's no-cache RunContext may have switched the
        # process-wide cache off; this test is *about* caching.
        from repro.core.runcache import configure

        configure(reset=True, enabled=True)
        st = Study("B")
        first = st.run("strided-load", "ht_off_2_1")
        again = st.run("strided-load", "ht_off_2_1")
        assert first is again  # memoized via the run cache
        assert first.runtime_seconds > 0

    def test_speedup_for_registry_workload(self):
        s = Study("B").speedup("triad", "ht_off_2_2")
        assert 0.1 < s < 16.0


class TestContextIntegration:
    def test_default_workloads_are_paper_benchmarks(self):
        from repro.core.context import RunContext

        assert RunContext().workload_names() == Study.paper_benchmarks()

    def test_explicit_workloads_validated(self):
        from repro.core.context import RunContext

        ctx = RunContext(workloads=["minigmg", "triad"])
        assert ctx.workload_names() == ["minigmg", "triad"]
        bad = RunContext(workloads=["nope"])
        with pytest.raises(UnknownWorkloadError):
            bad.workload_names()

    def test_path_workloads_stay_resolvable_by_studies(self, tmp_path):
        from repro.core.context import RunContext

        path = _write_spec(tmp_path / "custom.json", "custom")
        ctx = RunContext(workloads=[path])
        (token,) = ctx.workload_names()
        # The token round-trips through a Study even though the file is
        # outside the registry directory.
        assert Study("B").workload(token).name == "custom"
