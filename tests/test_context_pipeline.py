"""Tests for the RunContext and the dependency-aware run-all pipeline."""

import json

import pytest

from repro.core.context import RunContext, as_context
from repro.core.runcache import CacheStats, get_cache
from repro.core.study import Study
from repro.experiments.pipeline import run_pipeline, write_artifacts


class TestRunContext:
    def test_default_study_memoized(self):
        ctx = RunContext()
        assert ctx.study() is ctx.study()

    def test_override_builds_distinct_study(self):
        ctx = RunContext()
        base = ctx.study()
        variant = ctx.study(problem_class="A")
        assert variant is not base
        assert variant is ctx.study(problem_class="A")
        assert len(ctx.fingerprints) == 2

    def test_for_study_returns_same_instance(self):
        study = Study("B")
        ctx = as_context(study)
        assert ctx.study() is study

    def test_as_context_coercions(self):
        assert isinstance(as_context(None), RunContext)
        ctx = RunContext()
        assert as_context(ctx) is ctx
        with pytest.raises(TypeError):
            as_context(42)

    def test_dependency_lookup(self):
        ctx = RunContext()
        ctx.results["fig3"] = "sentinel"
        assert ctx.dependency("fig3") == "sentinel"
        with pytest.raises(KeyError, match="available"):
            ctx.dependency("fig2")

    def test_touched_fingerprints_reset(self):
        ctx = RunContext()
        ctx.study()
        assert ctx.touched_fingerprints(reset=True)
        assert ctx.touched_fingerprints() == []
        # The memo pool survives the reset.
        assert ctx.fingerprints

    def test_spawn_carries_studies_and_trims_jobs(self):
        ctx = RunContext(jobs=4)
        base = ctx.study()
        worker = ctx.spawn(jobs=1)
        assert worker.jobs == 1
        assert worker.study() is base
        # Worker results are an independent dict.
        worker.results["x"] = 1
        assert "x" not in ctx.results

    def test_machine_params_default(self):
        from repro.machine.params import paxville_params

        assert RunContext().machine_params() == paxville_params()


class TestCacheStats:
    def test_since_and_as_dict(self):
        before = CacheStats(memory_hits=2, disk_hits=1, misses=3)
        after = CacheStats(memory_hits=5, disk_hits=1, misses=4)
        delta = after.since(before)
        d = delta.as_dict()
        assert d["memory_hits"] == 3
        assert d["hits"] == 3
        assert d["misses"] == 1
        assert d["lookups"] == 4
        assert d["hit_rate"] == pytest.approx(0.75)

    def test_empty_hit_rate(self):
        assert CacheStats().as_dict()["hit_rate"] == 0.0


class TestPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return run_pipeline(RunContext(), only=["fig3", "table2"])

    def test_dependency_consumed_not_recomputed(self, pipeline):
        rec3 = pipeline.records["fig3"]
        rec2 = pipeline.records["table2"]
        assert rec3.wave == 0 and rec2.wave == 1
        # table2 consumed fig3's table from ctx.results: no simulator
        # runs (cache lookups) of its own.
        assert rec2.cache["lookups"] == 0
        assert rec2.result.averages

    def test_records_expose_measurements(self, pipeline):
        for rec in pipeline.records.values():
            assert rec.wall_time_s >= 0
            assert rec.text.strip()
            assert isinstance(rec.study_fingerprints, list)

    def test_manifest_shape(self, pipeline):
        m = pipeline.manifest
        assert m["schema"] == 4
        assert m["batch_mode"] in ("auto", "on", "off")
        assert m["status"] == "complete"
        assert m["failures"] == {} and m["skipped"] == {}
        assert m["parallel_fallbacks"] == []
        assert m["problem_class"] == "B"
        assert m["package_version"]
        assert set(m["experiments"]) == {"fig3", "table2"}
        entry = m["experiments"]["table2"]
        assert entry["requires"] == ["fig3"]
        assert entry["artifacts"] == {
            "text": "table2.txt", "json": "table2.json"
        }
        assert m["total_wall_time_s"] >= 0
        assert "totals" in m["cache"]

    def test_write_artifacts(self, pipeline, tmp_path):
        written = write_artifacts(pipeline, tmp_path)
        names = {p.name for p in written}
        assert names == {"fig3.txt", "fig3.json", "table2.txt",
                         "table2.json", "manifest.json"}
        payload = json.loads((tmp_path / "fig3.json").read_text())
        assert payload["experiment"] == "fig3"
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest == pipeline.manifest

    def test_parallel_matches_serial(self):
        serial = run_pipeline(
            RunContext(), only=["sec3-lmbench", "omp-overheads"]
        )
        parallel = run_pipeline(
            RunContext(jobs=2), only=["sec3-lmbench", "omp-overheads"]
        )
        for rid in serial.records:
            assert serial.records[rid].text == parallel.records[rid].text

    def test_disk_cache_dir_applied(self, tmp_path):
        ctx = RunContext(cache_dir=tmp_path / "cache")
        run_pipeline(ctx, only=["omp-overheads"])
        assert get_cache().disk_dir == tmp_path / "cache"
