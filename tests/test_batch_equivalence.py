"""Machine-axis batching must be invisible in the results.

The batched engine (:mod:`repro.sim.batch`) promises *byte-identical*
results to the scalar path — every float produced by the same IEEE-754
operation sequence — which is stronger than the fixed-point residual
bound it needs.  These tests pin that promise three ways:

* exhaustively over the paper's benchmark/configuration matrix on the
  stock machine plus perturbed variants;
* property-based, over random-but-valid machine batches drawn from the
  spec-schema strategies (``repro.testing.strategies``);
* end-to-end, over pipeline artifacts written with batching forced on
  versus off.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import verify
from repro.core.context import RunContext
from repro.core.study import Study
from repro.machine.registry import default_params
from repro.sim.batch import run_batched_single
from repro.sim.sensitivity import PERTURBABLE, perturb_params
from repro.machine.spec import MachineSpec
from repro.testing.strategies import machine_params, nlevel_machine_trees


def assert_identical_runs(batched, scalar, tag=""):
    """Full structural equality of two RunResults, floats compared
    exactly (``==``, no tolerance) and dict insertion order included."""
    assert batched.config.name == scalar.config.name, tag
    assert batched.runtime_seconds == scalar.runtime_seconds, tag
    assert len(batched.programs) == len(scalar.programs), tag
    for pb, ps in zip(batched.programs, scalar.programs):
        assert pb.runtime_seconds == ps.runtime_seconds, tag
        cb, cs = dict(pb.counters._counts), dict(ps.counters._counts)
        assert list(cb) == list(cs), (tag, "counter insertion order")
        assert cb == cs, tag
    sets_b = {k: dict(v._counts) for k, v in batched.collector._sets.items()}
    sets_s = {k: dict(v._counts) for k, v in scalar.collector._sets.items()}
    assert list(sets_b) == list(sets_s), (tag, "collector set order")
    assert sets_b == sets_s, tag
    assert batched.phase_log == scalar.phase_log, tag
    assert batched.timeline.samples == scalar.timeline.samples, tag


def _batched_vs_scalar(variants, bench, config):
    """Run one (benchmark, config) over all machine variants both ways
    and compare."""
    batched_studies = [Study("B", params=p) for p in variants]
    results = run_batched_single(
        [st.engine(config) for st in batched_studies],
        [st.workload(bench) for st in batched_studies],
    )
    assert results is not None, (bench, config)
    for params, res in zip(variants, results):
        scalar_study = Study("B", params=params)
        scalar = scalar_study.engine(config).run_single(
            scalar_study.workload(bench)
        )
        assert_identical_runs(res, scalar, f"{bench}/{config}")


class TestMatrixByteIdentity:
    """Stock + perturbed Paxville over the paper's run matrix."""

    @pytest.mark.parametrize("bench", ["cg", "sp", "mg"])
    @pytest.mark.parametrize(
        "config", ["serial", "ht_on_8_2", "ht_off_4_2", "ht_on_4_1"]
    )
    def test_batched_equals_scalar(self, bench, config):
        base = default_params()
        variants = [
            base,
            perturb_params(base, PERTURBABLE[0][1], 0.8),
            perturb_params(base, PERTURBABLE[6][1], 1.25),
        ]
        with verify.verification(False):
            _batched_vs_scalar(variants, bench, config)

    def test_auditor_forces_scalar(self):
        """With the invariant auditor on, the batched driver declines."""
        with verify.verification(True):
            study = Study("B")
            assert run_batched_single(
                [study.engine("serial")], [study.workload("cg")]
            ) is None


class TestRandomMachineBatches:
    """Property: any batch of schema-valid machines resolves
    identically batched and scalar."""

    @given(
        st.lists(machine_params(), min_size=2, max_size=3),
        st.sampled_from(["cg", "sp"]),
        st.sampled_from(["serial", "ht_on_8_2", "ht_off_4_2"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_batched_equals_scalar(self, variants, bench, config):
        with verify.verification(False):
            _batched_vs_scalar(variants, bench, config)


class TestPipelineArtifacts:
    """End-to-end: artifacts written with batch=on are byte-identical
    to batch=off, and the manifest accounts for what ran batched."""

    def _run(self, tmp_path, mode):
        from repro.experiments.pipeline import run_pipeline, write_artifacts

        out = tmp_path / mode
        # verify=False on the context: the pipeline re-applies the
        # runtime switches itself, so a surrounding context manager
        # would be overwritten (and the auditor forces scalar runs).
        ctx = RunContext(
            cache_enabled=False, batch=mode, jobs=1, verify=False
        )
        pipeline = run_pipeline(ctx, only=["class-scaling"])
        assert pipeline.ok
        write_artifacts(pipeline, out)
        return out, pipeline

    def test_artifacts_byte_identical(self, tmp_path):
        out_off, _ = self._run(tmp_path, "off")
        out_on, on_pipe = self._run(tmp_path, "on")
        for name in ("class-scaling.txt", "class-scaling.json"):
            assert (out_on / name).read_bytes() == \
                (out_off / name).read_bytes(), name
        stats = on_pipe.manifest["experiments"]["class-scaling"]["batch"]
        assert stats["batched_machines"] == 3
        assert stats["scalar_fallbacks"] == 1  # the recording lane
        assert on_pipe.manifest["schema"] >= 3
        assert on_pipe.manifest["batch_mode"] == "on"


class TestNLevelMachineBatches:
    """Uniform N-level machines take the batched path and stay
    byte-identical; non-uniform machines (heterogeneous cores, NUMA
    tiers) decline to the scalar engine."""

    @given(
        # One depth per batch: lanes with mismatched hierarchy depth
        # legitimately decline to scalar, which is tested separately.
        st.integers(3, 4).flatmap(lambda d: st.lists(
            nlevel_machine_trees(depth=st.just(d)),
            min_size=2, max_size=3,
        )),
        st.sampled_from(["cg", "sp"]),
        st.sampled_from(["serial", "ht_on_8_2", "ht_off_4_2"]),
    )
    @settings(max_examples=6, deadline=None)
    def test_batched_equals_scalar_three_levels(
        self, trees, bench, config
    ):
        variants = [
            MachineSpec.from_dict({
                "schema": 1, "name": f"nlevel-{i}", "machine": tree,
            }).to_params()
            for i, tree in enumerate(trees)
        ]
        with verify.verification(False):
            _batched_vs_scalar(variants, bench, config)

    def test_checked_in_three_level_spec_batches(self):
        from repro.machine.registry import resolve_machine

        params = resolve_machine("broadwell-shared-l3").to_params()
        with verify.verification(False):
            _batched_vs_scalar([params, params], "cg", "ht_off_4_2")

    @pytest.mark.parametrize(
        "machine", ["biglittle-demo", "cascadelake-2s-numa"]
    )
    def test_non_uniform_machines_decline(self, machine):
        from repro.machine.registry import resolve_machine

        study = Study("B", params=resolve_machine(machine).to_params())
        with verify.verification(False):
            assert run_batched_single(
                [study.engine("ht_off_4_2")], [study.workload("cg")]
            ) is None

    def test_mixed_depth_lanes_decline(self):
        from repro.machine.registry import resolve_machine

        two = Study("B", params=default_params())
        three = Study(
            "B", params=resolve_machine("broadwell-shared-l3").to_params()
        )
        with verify.verification(False):
            assert run_batched_single(
                [two.engine("serial"), three.engine("serial")],
                [two.workload("cg"), three.workload("cg")],
            ) is None
