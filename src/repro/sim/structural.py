"""Structural co-simulation: measure sharing effects on real cache models.

The analytic engine predicts HT-sibling sharing effects (capacity
dilution, constructive sharing, miss amortization) in closed form.  This
module *measures* the same quantities by replaying sampled address
streams — interleaved exactly as two hardware contexts interleave them —
through the access-by-access :class:`~repro.mem.cache.SetAssocCache` and
:class:`~repro.mem.tlb.TLB` simulators.

It serves two purposes:

* **validation** — ``experiments/validation.py`` compares analytic and
  structural miss rates for every benchmark phase and sharing scenario
  (the test suite enforces agreement bands); and
* **drill-down** — users modeling their own workloads can check what the
  closed forms hide (set-conflict artifacts, interleaving granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.machine.params import MachineParams
from repro.machine.registry import default_params
from repro.mem.cache import SetAssocCache
from repro.mem.hierarchy import HierarchyModel, LevelRates
from repro.mem.tlb import TLB
from repro.perf import use_vectorized
from repro.trace.phase import Phase
from repro.trace.sampling import sample_mix


@dataclass(frozen=True)
class StructuralRates:
    """Measured per-context rates from a structural replay."""

    l1_miss_rate: float
    l2_miss_rate: float  # local: L2 misses / L2 accesses
    dtlb_miss_rate: float

    @property
    def l2_global_miss_rate(self) -> float:
        return self.l1_miss_rate * self.l2_miss_rate


@dataclass(frozen=True)
class SharingScenario:
    """One core-occupancy scenario to measure.

    Attributes:
        phase: the phase under measurement.
        n_threads: team size (divides partitioned footprints).
        co_phase: phase on the HT sibling (None = idle sibling).
        same_data: sibling belongs to the same program instance.
    """

    phase: Phase
    n_threads: int = 1
    co_phase: Optional[Phase] = None
    same_data: bool = True


class StructuralCoSimulator:
    """Replays sampled phase streams through structural cache models."""

    def __init__(
        self,
        params: Optional[MachineParams] = None,
        samples: int = 30000,
        warmup_fraction: float = 0.25,
        seed: int = 20070325,
        vectorized: Optional[bool] = None,
    ):
        self.params = params if params is not None else default_params()
        self.samples = samples
        self.warmup_fraction = warmup_fraction
        self.seed = seed
        self.vectorized = vectorized

    # ------------------------------------------------------------------
    def _phase_stream(
        self, phase: Phase, n_threads: int, rng: np.random.Generator,
        region_offset: int = 0,
    ) -> np.ndarray:
        """A sampled per-thread address stream for a phase.

        Partitioned footprints shrink with the team size; when the
        sibling belongs to a *different* program (``region_offset``),
        its whole address space is displaced so nothing aliases.
        """
        mix = phase.access_mix
        scaled = _scale_mix_for_threads(mix, n_threads)
        stream = sample_mix(
            scaled, self.samples, self.samples, rng
        ).addresses
        if region_offset:
            stream = stream + region_offset
        return stream

    def measure(self, scenario: SharingScenario) -> StructuralRates:
        """Measure one context's miss rates under the scenario.

        The measured context is context 0; when a sibling phase is
        present the two streams interleave round-robin (the fine-grained
        interleaving of two HT contexts sharing a core's caches).
        """
        rng = np.random.default_rng(self.seed)
        own = self._phase_stream(scenario.phase, scenario.n_threads, rng)

        if scenario.co_phase is None:
            addrs = own
            ctxs = np.zeros(len(own), dtype=np.int64)
        else:
            if scenario.same_data:
                # Same program: the sibling walks the same regions, with
                # its own partition slice modeled by an independent draw.
                sib = self._phase_stream(
                    scenario.co_phase, scenario.n_threads, rng
                )
            else:
                # Different program: fully disjoint address space.
                offset = int(own.max()) + (1 << 30)
                sib = self._phase_stream(
                    scenario.co_phase, scenario.n_threads, rng, offset
                )
            n = min(len(own), len(sib))
            addrs = np.empty(2 * n, dtype=np.int64)
            addrs[0::2] = own[:n]
            addrs[1::2] = sib[:n]
            ctxs = np.empty(2 * n, dtype=np.int64)
            ctxs[0::2] = 0
            ctxs[1::2] = 1

        return self._replay(addrs, ctxs)

    # ------------------------------------------------------------------
    def _replay(
        self, addrs: np.ndarray, ctxs: np.ndarray
    ) -> StructuralRates:
        """Drive L1 -> L2 -> DTLB and report context-0 rates.

        The three structures are independent (the L2 simply sees the
        subsequence of addresses that missed L1, the DTLB sees every
        address), so the vectorized path replays each structure's whole
        substream through the batched LRU engine; the scalar reference
        interleaves them access by access.  Both orders produce the
        same per-structure access sequences, hence identical rates.
        """
        if use_vectorized(self.vectorized):
            return self._replay_batch(addrs, ctxs)
        return self._replay_scalar(addrs, ctxs)

    def _replay_batch(
        self, addrs: np.ndarray, ctxs: np.ndarray
    ) -> StructuralRates:
        p = self.params
        l1 = SetAssocCache(p.l1d)
        l2 = SetAssocCache(p.l2)
        dtlb = TLB(p.dtlb)
        n_warm = int(len(addrs) * self.warmup_fraction)

        # L1: warmup batch, stats reset at the warmup boundary exactly
        # as the scalar loop does, then the measured batch.
        warm_miss1 = l1.run_misses(
            addrs[:n_warm], ctxs[:n_warm], vectorized=True
        )
        l1.stats = type(l1.stats)()
        miss1 = l1.run_misses(addrs[n_warm:], ctxs[n_warm:], vectorized=True)

        # L2 sees every L1 miss (warmup included, to warm its arrays);
        # only the measured portion is counted.
        all_miss1 = np.concatenate([warm_miss1, miss1])
        l2_stream = addrs[all_miss1]
        miss2 = l2.run_misses(l2_stream, ctxs[all_miss1], vectorized=True)
        measured2 = np.flatnonzero(all_miss1) >= n_warm
        l2_ctx = ctxs[all_miss1]
        sel2 = measured2 & (l2_ctx == 0)
        l2_acc0 = int(sel2.sum())
        l2_miss0 = int(miss2[sel2].sum())

        # The DTLB is only driven during the measured window (the scalar
        # loop never touches it in warmup); count its context-0 slice.
        tlb_miss = dtlb.run_misses(addrs[n_warm:], vectorized=True)
        sel_t = ctxs[n_warm:] == 0
        tlb_acc0 = int(sel_t.sum())
        tlb_miss0 = int(tlb_miss[sel_t].sum())

        return StructuralRates(
            l1_miss_rate=l1.stats.miss_rate(0),
            l2_miss_rate=l2_miss0 / l2_acc0 if l2_acc0 else 0.0,
            dtlb_miss_rate=tlb_miss0 / tlb_acc0 if tlb_acc0 else 0.0,
        )

    def _replay_scalar(
        self, addrs: np.ndarray, ctxs: np.ndarray
    ) -> StructuralRates:
        """Reference implementation: the original interleaved loop."""
        p = self.params
        l1 = SetAssocCache(p.l1d)
        l2 = SetAssocCache(p.l2)
        dtlb = TLB(p.dtlb)

        n_warm = int(len(addrs) * self.warmup_fraction)
        l2_acc = {0: 0, 1: 0}
        l2_miss = {0: 0, 1: 0}
        dtlb_acc = {0: 0, 1: 0}
        dtlb_miss = {0: 0, 1: 0}

        for i in range(len(addrs)):
            a = int(addrs[i])
            c = int(ctxs[i])
            measured = i >= n_warm
            if i == n_warm:
                l1.stats = type(l1.stats)()
            miss1 = l1.access(a, context=c)
            if miss1:
                miss2 = l2.access(a, context=c)
                if measured:
                    l2_acc[c] += 1
                    l2_miss[c] += int(miss2)
            if measured:
                dtlb_acc[c] += 1
                dtlb_miss[c] += int(dtlb.access(a))

        l1_rate = l1.stats.miss_rate(0)
        l2_rate = l2_miss[0] / l2_acc[0] if l2_acc[0] else 0.0
        dtlb_rate = dtlb_miss[0] / dtlb_acc[0] if dtlb_acc[0] else 0.0
        return StructuralRates(
            l1_miss_rate=l1_rate,
            l2_miss_rate=l2_rate,
            dtlb_miss_rate=dtlb_rate,
        )

    # ------------------------------------------------------------------
    def analytic_for(self, scenario: SharingScenario) -> LevelRates:
        """The analytic model's prediction for the same scenario."""
        hier = HierarchyModel(self.params)
        sharers = 1 if scenario.co_phase is None else 2
        same_code = (
            scenario.co_phase is not None
            and scenario.co_phase.name == scenario.phase.name
        )
        return hier.evaluate(
            scenario.phase,
            n_threads=scenario.n_threads,
            core_sharers=sharers,
            same_data=scenario.same_data and sharers > 1,
            same_code=same_code,
            total_visible_contexts=sharers,
            co_phase=scenario.co_phase,
        )


def _scale_mix_for_threads(mix, n_threads: int):
    """Clone a mix with partitioned footprints divided by the team size."""
    import dataclasses

    from repro.trace.patterns import AccessMix, StencilPattern

    if n_threads <= 1:
        return mix
    comps = []
    for w, pattern in mix.components:
        fp = pattern.thread_footprint(n_threads)
        changes = {"footprint_bytes": fp}
        if (
            isinstance(pattern, StencilPattern)
            and pattern.reuse_window_bytes
            and pattern.window_scales
        ):
            ratio = fp / pattern.footprint_bytes
            changes["reuse_window_bytes"] = pattern.reuse_window_bytes * ratio
        comps.append((w, dataclasses.replace(pattern, **changes)))
    return AccessMix(components=tuple(comps))
