"""Section 3 platform characterization: LMbench latency/bandwidth table.

Paper targets (reconstructed, see EXPERIMENTS.md): L1 1.43 ns, L2 ~9.6 ns,
main memory ~136.9 ns; read/write streaming bandwidth 3.57 / 1.77 GB/s on
one chip and 4.43 / 2.06 GB/s across both chips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.analysis.report import format_table
from repro.analysis.result import ExperimentResult
from repro.core.context import RunContext, as_context
from repro.core.study import Study
from repro.lmbench import (
    BandwidthResult,
    LatencyPoint,
    bw_mem,
    lat_mem_rd,
    latency_plateaus,
)
from repro.machine.params import MachineParams


@dataclass
class Sec3Result(ExperimentResult):
    """Measured platform characteristics."""

    latency_points: List[LatencyPoint]
    plateaus: Dict[str, float]
    bandwidth: Dict[str, BandwidthResult]


#: The paper's reported values (GB/s and ns).
PAPER_VALUES = {
    "l1_ns": 1.43,
    "l2_ns": 9.6,
    "memory_ns": 136.9,
    "read_1chip": 3.57,
    "write_1chip": 1.77,
    "read_2chip": 4.43,
    "write_2chip": 2.06,
}


def run(
    ctx: Union[RunContext, Study, None] = None,
    params: Optional[MachineParams] = None,
) -> Sec3Result:
    """Run the latency sweep and the four bandwidth measurements."""
    params = params if params is not None else as_context(ctx).machine_params()
    points = lat_mem_rd(params=params)
    return Sec3Result(
        latency_points=points,
        plateaus=latency_plateaus(points),
        bandwidth={
            "read_1chip": bw_mem(1, "read", params),
            "write_1chip": bw_mem(1, "write", params),
            "read_2chip": bw_mem(2, "read", params),
            "write_2chip": bw_mem(2, "write", params),
        },
    )


def report(result: Sec3Result) -> str:
    """Render the Section-3 table with paper-vs-measured columns."""
    rows = []
    for key, label in [
        ("l1_ns", "L1 latency (ns)"),
        ("l2_ns", "L2 latency (ns)"),
        ("memory_ns", "memory latency (ns)"),
    ]:
        rows.append([label, PAPER_VALUES[key], result.plateaus[key]])
    for key, label in [
        ("read_1chip", "read BW, 1 chip (GB/s)"),
        ("write_1chip", "write BW, 1 chip (GB/s)"),
        ("read_2chip", "read BW, 2 chips (GB/s)"),
        ("write_2chip", "write BW, 2 chips (GB/s)"),
    ]:
        rows.append(
            [label, PAPER_VALUES[key], result.bandwidth[key].gbytes_per_second]
        )
    return format_table(
        ["quantity", "paper", "measured"],
        rows,
        title="Section 3: platform characterization (LMbench)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
