"""The serve scheduler: dedup, cache fast path, cancel, drain, keys.

The concurrency-critical properties of the simulation service live
here, exercised against *injected* runners (counting stubs, blocking
barriers, deliberate failures) so each scenario is deterministic:

* N concurrent identical submissions execute the engine exactly once
  and every waiter receives the result (the dedup contract);
* a warm run cache answers a submission without it ever entering the
  worker pool;
* cancelling a queued job never executes it; cancelling the last live
  waiter of a running job cancels the underlying execution
  cooperatively, while earlier waiters merely detach;
* a failing job surfaces the pipeline's structured failure payload;
* ``/stats`` counters always close: submitted = done + failed +
  cancelled + queued + running;
* the dedup key is canonical: semantically identical submissions (case,
  field order, name vs fingerprint spellings) map to one key, and any
  parameter that changes the simulation changes the key (Hypothesis).
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import supervise
from repro.serve import store as jobstore
from repro.serve.runner import JobRunner
from repro.serve.schema import JobSpecError, job_key, parse_job
from repro.serve.scheduler import Scheduler, SchedulerClosed


# ----------------------------------------------------------------------
# Injected runners


class CountingRunner:
    """Counts executions; optionally blocks until released."""

    def __init__(self, block=False, result=None):
        self.calls = 0
        self.block = block
        self.result = result or {"ok": True}
        self.started = threading.Event()
        self.release = threading.Event()
        self._lock = threading.Lock()

    def __call__(self, spec):
        with self._lock:
            self.calls += 1
        self.started.set()
        if self.block:
            # Cooperative: a cancel or deadline lands at the next check.
            while not self.release.wait(0.002):
                supervise.check("counting runner")
        return dict(self.result)


class FailingRunner:
    def __call__(self, spec):
        raise RuntimeError("synthetic engine explosion")


class ProbeRunner(CountingRunner):
    """A runner whose probe() answers everything from 'cache'."""

    def __init__(self, warm):
        super().__init__()
        self.warm = warm
        self.probes = 0

    def probe(self, spec):
        self.probes += 1
        return {"cached": True} if self.warm else None


RUN_CG = {
    "kind": "run", "workload": "cg", "config": "serial",
    "problem_class": "S",
}


def _wait_terminal(scheduler, job, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if scheduler.get(job.id).terminal:
            return scheduler.get(job.id)
        time.sleep(0.002)
    raise AssertionError(f"job {job.id} never settled")


def _shutdown(scheduler):
    scheduler.shutdown(timeout_s=1.0)


# ----------------------------------------------------------------------
# Dedup


def test_concurrent_identical_submissions_execute_once():
    """The headline contract: N racing submitters, one engine call."""
    runner = CountingRunner(block=True)
    scheduler = Scheduler(workers=2, runner=runner)
    try:
        jobs, errors = [], []
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            try:
                jobs.append(scheduler.submit(dict(RUN_CG)))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        # Join the submitters *before* releasing the runner: submit()
        # never blocks, and holding the execution open guarantees every
        # non-owning submission attaches as a dedup waiter rather than
        # racing the result memo.
        for t in threads:
            t.join()
        assert runner.started.wait(5.0)
        runner.release.set()
        assert not errors
        assert len(jobs) == 8
        for job in jobs:
            final = _wait_terminal(scheduler, job)
            assert final.state == jobstore.DONE
        assert runner.calls == 1
        assert scheduler.engine_calls == 1
        sources = sorted(j.source for j in jobs)
        assert sources.count("executed") == 1
        assert sources.count("dedup") == 7
        stats = scheduler.stats()
        assert stats["counters"]["dedup_hits"] == 7
        assert stats["counters"]["results_fanned_out"] == 8
        # Every waiter reads the same memoized result.
        results = {tuple(sorted(scheduler.result(j.id).items()))
                   for j in jobs}
        assert len(results) == 1
    finally:
        _shutdown(scheduler)


def test_dedup_key_separates_distinct_jobs():
    runner = CountingRunner()
    scheduler = Scheduler(workers=1, runner=runner)
    try:
        a = scheduler.submit(dict(RUN_CG))
        b = scheduler.submit({**RUN_CG, "config": "ht_on_4_1"})
        _wait_terminal(scheduler, a)
        _wait_terminal(scheduler, b)
        assert runner.calls == 2
    finally:
        _shutdown(scheduler)


# ----------------------------------------------------------------------
# Cache fast path


def test_warm_probe_answers_without_entering_the_pool():
    runner = ProbeRunner(warm=True)
    scheduler = Scheduler(workers=1, runner=runner)
    try:
        job = scheduler.submit(dict(RUN_CG))
        assert job.state == jobstore.DONE
        assert job.source == "cache"
        assert runner.calls == 0
        assert scheduler.engine_calls == 0
        assert scheduler.result(job.id) == {"cached": True}
        assert scheduler.stats()["counters"]["cache_hits"] == 1
    finally:
        _shutdown(scheduler)


def test_result_memo_answers_repeat_submissions():
    """Second submission of a completed job never re-probes or re-runs."""
    runner = CountingRunner()
    scheduler = Scheduler(workers=1, runner=runner)
    try:
        first = scheduler.submit(dict(RUN_CG))
        _wait_terminal(scheduler, first)
        second = scheduler.submit(dict(RUN_CG))
        assert second.state == jobstore.DONE
        assert second.source == "cache"
        assert runner.calls == 1
        assert scheduler.result(second.id) == scheduler.result(first.id)
    finally:
        _shutdown(scheduler)


def test_engine_backed_warm_cache_bypasses_pool():
    """With the real runner, a study-cached run answers resubmission."""
    runner = JobRunner()
    scheduler = Scheduler(workers=1, runner=runner)
    try:
        first = scheduler.submit(dict(RUN_CG))
        final = _wait_terminal(scheduler, first)
        assert final.state == jobstore.DONE
        assert scheduler.engine_calls == 1
        warm = scheduler.submit(dict(RUN_CG))
        assert warm.state == jobstore.DONE
        assert warm.source == "cache"
        assert scheduler.engine_calls == 1
        result = scheduler.result(warm.id)
        assert result["kind"] == "run"
        assert result["runtime_seconds"] > 0
    finally:
        _shutdown(scheduler)


# ----------------------------------------------------------------------
# Cancellation


def test_cancel_while_queued_never_executes():
    runner = CountingRunner(block=True)
    scheduler = Scheduler(workers=1, runner=runner)
    try:
        blocker = scheduler.submit(dict(RUN_CG))
        assert runner.started.wait(5.0)
        queued = scheduler.submit({**RUN_CG, "config": "ht_on_4_1"})
        cancelled = scheduler.cancel(queued.id)
        assert cancelled.state == jobstore.CANCELLED
        assert cancelled.reason == "client-cancel"
        runner.release.set()
        _wait_terminal(scheduler, blocker)
        _wait_terminal(scheduler, queued)
        assert runner.calls == 1  # the queued job never ran
        assert scheduler.get(queued.id).state == jobstore.CANCELLED
    finally:
        _shutdown(scheduler)


def test_cancel_last_waiter_cancels_the_running_execution():
    runner = CountingRunner(block=True)
    scheduler = Scheduler(workers=1, runner=runner)
    try:
        job = scheduler.submit(dict(RUN_CG))
        assert runner.started.wait(5.0)
        assert scheduler.get(job.id).state == jobstore.RUNNING
        scheduler.cancel(job.id)
        # The runner's next supervise.check() raises CancelledRun
        # without the test ever setting runner.release.
        final = _wait_terminal(scheduler, job)
        assert final.state == jobstore.CANCELLED
        # The worker notices the cancel cooperatively and retires the
        # execution shortly after the job itself turns terminal.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with scheduler._lock:
                if not scheduler._executions:
                    break
            time.sleep(0.002)
        with scheduler._lock:
            assert not scheduler._executions
    finally:
        _shutdown(scheduler)


def test_cancel_one_of_several_waiters_detaches_only_it():
    runner = CountingRunner(block=True)
    scheduler = Scheduler(workers=1, runner=runner)
    try:
        first = scheduler.submit(dict(RUN_CG))
        assert runner.started.wait(5.0)
        second = scheduler.submit(dict(RUN_CG))
        assert second.source == "dedup"
        scheduler.cancel(second.id)
        runner.release.set()
        assert _wait_terminal(scheduler, first).state == jobstore.DONE
        assert scheduler.get(second.id).state == jobstore.CANCELLED
        assert runner.calls == 1
    finally:
        _shutdown(scheduler)


def test_cancel_terminal_job_is_an_error():
    runner = CountingRunner()
    scheduler = Scheduler(workers=1, runner=runner)
    try:
        job = scheduler.submit(dict(RUN_CG))
        _wait_terminal(scheduler, job)
        with pytest.raises(ValueError, match="already done"):
            scheduler.cancel(job.id)
        assert scheduler.cancel("j999999") is None
    finally:
        _shutdown(scheduler)


def test_job_timeout_fails_the_job_with_deadline_provenance():
    runner = CountingRunner(block=True)
    scheduler = Scheduler(workers=1, runner=runner, job_timeout_s=0.05)
    try:
        job = scheduler.submit(dict(RUN_CG))
        final = _wait_terminal(scheduler, job)
        assert final.state == jobstore.FAILED
        assert final.error["error_type"] == "DeadlineExceeded"
        assert "wall-time budget" in final.reason
    finally:
        runner.release.set()
        _shutdown(scheduler)


# ----------------------------------------------------------------------
# Failure containment


def test_failed_job_surfaces_structured_error_payload():
    scheduler = Scheduler(workers=1, runner=FailingRunner())
    try:
        job = scheduler.submit(dict(RUN_CG))
        final = _wait_terminal(scheduler, job)
        assert final.state == jobstore.FAILED
        # The pipeline's ExperimentFailure shape, exactly.
        assert set(final.error) == {"error_type", "message", "traceback"}
        assert final.error["error_type"] == "RuntimeError"
        assert "synthetic engine explosion" in final.error["message"]
        assert "RuntimeError" in final.error["traceback"]
        assert scheduler.result(job.id) is None
    finally:
        _shutdown(scheduler)


def test_failure_fans_out_to_every_waiter():
    class BlockThenFail(CountingRunner):
        def __call__(self, spec):
            super().__call__(spec)
            raise RuntimeError("late failure")

    runner = BlockThenFail(block=True)
    scheduler = Scheduler(workers=1, runner=runner)
    try:
        first = scheduler.submit(dict(RUN_CG))
        assert runner.started.wait(5.0)
        second = scheduler.submit(dict(RUN_CG))
        runner.release.set()
        for job in (first, second):
            final = _wait_terminal(scheduler, job)
            assert final.state == jobstore.FAILED
            assert final.error["error_type"] == "RuntimeError"
    finally:
        _shutdown(scheduler)


# ----------------------------------------------------------------------
# Stats closure


def test_stats_counters_close_under_concurrent_load():
    runner = CountingRunner()
    scheduler = Scheduler(workers=3, runner=runner)
    try:
        configs = ["serial", "ht_on_4_1", "ht_off_2_2", "ht_on_8_2"]
        jobs = []

        def client(i):
            for config in configs:
                jobs.append(scheduler.submit({**RUN_CG, "config": config}))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for job in jobs:
            _wait_terminal(scheduler, job)
        stats = scheduler.stats()
        c = stats["jobs"]
        assert c["submitted"] == (
            c["done"] + c["failed"] + c["cancelled"]
            + c["queued"] + c["running"]
        )
        assert c["submitted"] == 24
        counters = stats["counters"]
        assert counters["submitted"] == 24
        # Triage is exhaustive: every submission was exactly one of
        # executed / dedup / cache.
        assert (
            counters["engine_calls"] + counters["dedup_hits"]
            + counters["cache_hits"] == 24
        )
        assert counters["engine_calls"] == len(configs) == runner.calls
        hist = stats["latency"]["histogram"]
        assert sum(hist.values()) == stats["latency"]["observed"] == 24
        assert stats["latency"]["p50_s"] <= stats["latency"]["p95_s"]
        assert stats["latency"]["p95_s"] <= stats["latency"]["p99_s"]
    finally:
        _shutdown(scheduler)


# ----------------------------------------------------------------------
# Drain / shutdown


def test_drain_completes_in_flight_work_cleanly():
    runner = CountingRunner()
    scheduler = Scheduler(workers=2, runner=runner)
    jobs = [scheduler.submit({**RUN_CG, "config": c})
            for c in ("serial", "ht_on_4_1", "ht_off_2_1")]
    report = scheduler.shutdown(timeout_s=10.0)
    assert report.clean
    assert report.cancelled == 0
    for job in jobs:
        assert scheduler.get(job.id).state == jobstore.DONE
    with pytest.raises(SchedulerClosed):
        scheduler.submit(dict(RUN_CG))
    assert scheduler.stats()["counters"]["rejected"] == 1


def test_drain_past_grace_cancels_stragglers():
    runner = CountingRunner(block=True)
    scheduler = Scheduler(workers=1, runner=runner)
    job = scheduler.submit(dict(RUN_CG))
    assert runner.started.wait(5.0)
    report = scheduler.shutdown(timeout_s=0.05)
    assert not report.clean
    assert report.cancelled == 1
    final = scheduler.get(job.id)
    assert final.state == jobstore.CANCELLED
    assert "drain" in (final.reason or "")


# ----------------------------------------------------------------------
# Journal + recovery


def test_journal_records_lifecycle_and_recovery_resubmits(tmp_path):
    runner = CountingRunner(block=True)
    scheduler = Scheduler(workers=1, runner=runner, state_dir=tmp_path)
    done = scheduler.submit(dict(RUN_CG))
    assert runner.started.wait(5.0)
    runner.release.set()
    _wait_terminal(scheduler, done)
    runner.release.clear()
    stuck = scheduler.submit({**RUN_CG, "config": "ht_on_4_1"})
    assert runner.started.wait(5.0)
    # Simulate a crash: abandon the scheduler without draining (the
    # journal keeps its half-written truth; the blocked worker thread
    # is a daemon and dies with the process).
    scheduler.store.journal.close()
    state = jobstore.load_jobs_journal(
        tmp_path / jobstore.JOBS_JOURNAL_NAME
    )
    assert state is not None
    assert not state.clean_shutdown
    assert {j.id for j in state.resumable} == {stuck.id}
    assert state.jobs[done.id].state == jobstore.DONE

    fresh_runner = CountingRunner()
    fresh = Scheduler(workers=1, runner=fresh_runner)
    try:
        assert fresh.recover(state) == 1
        [job] = [j for j in fresh.store.jobs()]
        final = _wait_terminal(fresh, job)
        assert final.state == jobstore.DONE
        assert fresh_runner.calls == 1
    finally:
        _shutdown(fresh)
    runner.release.set()


def test_clean_shutdown_is_journaled(tmp_path):
    scheduler = Scheduler(
        workers=1, runner=CountingRunner(), state_dir=tmp_path
    )
    job = scheduler.submit(dict(RUN_CG))
    _wait_terminal(scheduler, job)
    report = scheduler.shutdown(timeout_s=5.0)
    assert report.clean
    state = jobstore.load_jobs_journal(
        tmp_path / jobstore.JOBS_JOURNAL_NAME
    )
    assert state.clean_shutdown
    assert state.drain_cancelled == 0
    assert not state.resumable


def test_newer_journal_schema_is_refused(tmp_path):
    path = tmp_path / jobstore.JOBS_JOURNAL_NAME
    path.write_text('{"event": "server-started", "schema": 99}\n')
    with pytest.raises(ValueError, match="schema 99"):
        jobstore.load_jobs_journal(path)


def test_torn_final_journal_line_is_tolerated(tmp_path):
    path = tmp_path / jobstore.JOBS_JOURNAL_NAME
    path.write_text(
        '{"event": "server-started", "schema": 1}\n'
        '{"event": "submitted", "job": "j000001", "key": "k", "spec": {}}\n'
        '{"event": "state", "job": "j0'  # torn mid-write
    )
    state = jobstore.load_jobs_journal(path)
    assert state.jobs["j000001"].state == jobstore.QUEUED
    assert [j.id for j in state.resumable] == ["j000001"]


# ----------------------------------------------------------------------
# Canonical dedup keys


def test_job_key_ignores_spelling_of_workload_and_machine():
    """cg / CG / the CG spec fingerprint; machine name vs fingerprint
    vs omitted default — all one key."""
    from repro.machine.registry import DEFAULT_MACHINE, list_machines
    from repro.workload.registry import list_workloads

    base = parse_job(dict(RUN_CG))
    cg_fp = list_workloads("S")["CG"].fingerprint
    machine = list_machines()[DEFAULT_MACHINE]
    spellings = [
        {**RUN_CG, "workload": "CG"},
        {**RUN_CG, "workload": "Cg"},
        {**RUN_CG, "workload": cg_fp},
        {**RUN_CG, "machine": DEFAULT_MACHINE},
        {**RUN_CG, "machine": machine.fingerprint},
        {**RUN_CG, "machine": machine.short_fingerprint},
    ]
    for payload in spellings:
        assert job_key(parse_job(payload)) == job_key(base), payload


def test_job_key_changes_with_every_simulation_parameter():
    base = job_key(parse_job(dict(RUN_CG)))
    for delta in (
        {"workload": "mg"},
        {"config": "ht_on_4_1"},
        {"problem_class": "W"},
        {"scheduler": "gang"},
        {"machine": "nextgen-shared-l2"},
        {"kind": "speedup"},
    ):
        assert job_key(parse_job({**RUN_CG, **delta})) != base, delta


def test_experiment_job_key_canonicalizes_selection_order():
    a = parse_job({"kind": "experiment", "experiment": "fig3",
                   "workloads": ["cg", "MG"]})
    b = parse_job({"kind": "experiment", "experiment": "fig3",
                   "workloads": ["mg", "CG"]})
    assert job_key(a) == job_key(b)
    c = parse_job({"kind": "experiment", "experiment": "fig3",
                   "workloads": ["cg"]})
    assert job_key(c) != job_key(a)


_NAS = ("CG", "MG", "FT", "LU", "EP", "SP")
_CONFIGS = ("serial", "ht_on_4_1", "ht_off_2_2")


@st.composite
def _job_payloads(draw):
    """A run/speedup payload plus a random respelling of the same job."""
    kind = draw(st.sampled_from(("run", "speedup")))
    workload = draw(st.sampled_from(_NAS))
    config = draw(st.sampled_from(_CONFIGS))
    problem_class = draw(st.sampled_from(("S", "W")))
    canonical = {
        "kind": kind, "workload": workload, "config": config,
        "problem_class": problem_class,
    }
    respelled = {
        "kind": kind,
        "workload": draw(st.sampled_from(
            (workload.lower(), workload.upper(), workload.capitalize())
        )),
        "config": config,
        "problem_class": problem_class.lower()
        if draw(st.booleans()) else problem_class,
    }
    return canonical, respelled


@settings(max_examples=30)
@given(pair=_job_payloads(), other=_job_payloads())
def test_job_key_property(pair, other):
    """Respellings collide; semantically distinct jobs never do."""
    canonical, respelled = pair
    key = job_key(parse_job(canonical))
    assert job_key(parse_job(respelled)) == key
    other_canonical, _ = other
    if other_canonical == canonical:
        assert job_key(parse_job(other_canonical)) == key
    else:
        assert job_key(parse_job(other_canonical)) != key


def test_parse_job_rejects_malformed_payloads():
    for payload, fragment in (
        ("nope", "expected an object"),
        ({"kind": "dance"}, "unknown job kind"),
        ({"kind": "run"}, "workload: required"),
        ({"kind": "run", "workload": "zz"}, "workload:"),
        ({"kind": "run", "workload": "cg", "config": "warp9"}, "config:"),
        ({"kind": "speedup", "workload": "cg"}, "config: required"),
        ({"kind": "run", "workload": "cg", "experiment": "fig3"},
         "unknown field"),
        ({"kind": "experiment"}, "experiment: required"),
        ({"kind": "experiment", "experiment": "figX"},
         "unknown experiment"),
        ({"kind": "run", "workload": "cg", "problem_class": "Z"},
         "problem_class:"),
        ({"kind": "run", "workload": "cg", "machine": "atlantis"},
         "machine:"),
    ):
        with pytest.raises(JobSpecError, match=fragment):
            parse_job(payload)
