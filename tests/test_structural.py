"""Tests for the structural co-simulator and the validation experiment."""

import pytest

from repro.experiments import validation
from repro.npb.suite import build_workload
from repro.sim.structural import SharingScenario, StructuralCoSimulator


@pytest.fixture(scope="module")
def sim():
    return StructuralCoSimulator(samples=8000)


@pytest.fixture(scope="module")
def cg_phase():
    return build_workload("CG", "B").phases[-1]


@pytest.fixture(scope="module")
def ft_phase():
    return build_workload("FT", "B").phases[-1]


class TestStructuralCoSimulator:
    def test_solo_rates_bounded(self, sim, cg_phase):
        r = sim.measure(SharingScenario(phase=cg_phase, n_threads=4))
        assert 0.0 <= r.l1_miss_rate <= 1.0
        assert 0.0 <= r.l2_miss_rate <= 1.0
        assert 0.0 <= r.dtlb_miss_rate <= 1.0

    def test_different_program_sibling_raises_misses(self, sim, cg_phase,
                                                     ft_phase):
        solo = sim.measure(SharingScenario(phase=cg_phase, n_threads=4))
        mixed = sim.measure(
            SharingScenario(phase=cg_phase, n_threads=4, co_phase=ft_phase,
                            same_data=False)
        )
        assert mixed.l1_miss_rate > solo.l1_miss_rate

    def test_same_program_sibling_cheaper_than_foreign(self, sim, cg_phase,
                                                       ft_phase):
        """CG's shared source vector makes a same-program sibling less
        destructive than a foreign program in the same cache."""
        same = sim.measure(
            SharingScenario(phase=cg_phase, n_threads=4, co_phase=cg_phase,
                            same_data=True)
        )
        foreign = sim.measure(
            SharingScenario(phase=cg_phase, n_threads=4, co_phase=ft_phase,
                            same_data=False)
        )
        assert same.l1_miss_rate <= foreign.l1_miss_rate + 0.02

    def test_deterministic(self, sim, cg_phase):
        s = SharingScenario(phase=cg_phase, n_threads=2)
        assert sim.measure(s) == sim.measure(s)

    def test_analytic_prediction_available(self, sim, cg_phase):
        s = SharingScenario(phase=cg_phase, n_threads=4)
        rates = sim.analytic_for(s)
        assert rates.l1_miss_rate > 0

    def test_global_l2_property(self, sim, cg_phase):
        r = sim.measure(SharingScenario(phase=cg_phase, n_threads=4))
        assert r.l2_global_miss_rate <= r.l1_miss_rate + 1e-12


class TestValidationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return validation.run(benchmarks=["CG", "EP"], samples=8000)

    def test_rows_cover_scenarios(self, result):
        scenarios = {r.scenario for r in result.rows}
        assert scenarios == {"solo", "sibling_same", "sibling_other"}
        assert len(result.rows) == 6

    def test_l1_agreement_band(self, result):
        """The analytic model tracks the structural simulator on L1 miss
        rates within ~10 percentage points on every scenario."""
        assert result.max_l1_error < 0.12

    def test_report_renders(self, result):
        text = validation.report(result)
        assert "mean |L1 error|" in text
