"""Simulation engine binding machine + OS + OpenMP + workloads.

:class:`~repro.sim.engine.Engine` executes one or more multithreaded
programs on a machine configuration, phase by phase, resolving cache
sharing, SMT issue contention, branch-predictor pollution and front-side
bus contention as coupled fixed points, and accumulating PMU counters.
Concurrent programs are co-simulated phase-pair by phase-pair, so
asymmetric mixes (the paper's CG/FT workload) interact faithfully.

The engine is a thin step loop over three pluggable pieces: a
:class:`~repro.sim.resolver.ContentionResolver` (the coupled-contention
fixed point), the :class:`~repro.sim.advance.TimeAccountant`
(wall-time projection + PMU accounting), and
:class:`~repro.sim.observer.SimObserver` hooks (timeline, phase log,
and any user-supplied tracing).
"""

from repro.sim.engine import Engine
from repro.sim.advance import Progress, TimeAccountant
from repro.sim.observer import (
    PhaseEvent,
    PhaseLogObserver,
    SimObserver,
    StepEvent,
    TimelineObserver,
)
from repro.sim.resolver import (
    ActiveContext,
    ContentionResolver,
    FixedPointResolver,
    ResolvedContext,
)
from repro.sim.results import ProgramResult, RunResult, PhaseRecord

__all__ = [
    "Engine",
    "Progress",
    "TimeAccountant",
    "PhaseEvent",
    "PhaseLogObserver",
    "SimObserver",
    "StepEvent",
    "TimelineObserver",
    "ActiveContext",
    "ContentionResolver",
    "FixedPointResolver",
    "ResolvedContext",
    "ProgramResult",
    "RunResult",
    "PhaseRecord",
]
