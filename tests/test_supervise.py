"""Tests for the supervision primitives: budgets, cancellation, backoff.

The journal has its own module (``test_journal.py``); pipeline/CLI
integration lives in ``test_pipeline_supervise.py`` and ``test_cli.py``.
"""

import os
import signal
import threading

import pytest

from repro import supervise
from repro.supervise import (
    BackoffPolicy,
    Budget,
    BudgetError,
    CancelToken,
    CancelledRun,
    CircuitBreaker,
    DeadlineExceeded,
    SupervisionObserver,
    breaker,
    breaker_states,
    budget_from_env,
    install_signal_handlers,
    reset_breakers,
)


class TestBudget:
    def test_default_is_inert(self):
        b = Budget()
        assert not b.armed
        assert not b.bounded
        assert b.run_deadline is None
        assert b.experiment_deadline(0.0) is None
        assert not b.run_overdrawn(1e9)

    def test_arm_stamps_start_and_is_idempotent(self):
        b = Budget(run_timeout_s=10).arm(now=100.0)
        assert b.armed and b.started_at == 100.0
        assert b.arm(now=999.0) is b

    def test_run_deadline(self):
        b = Budget(run_timeout_s=10).arm(now=100.0)
        assert b.run_deadline == 110.0
        assert not b.run_overdrawn(now=109.0)
        assert b.run_overdrawn(now=111.0)

    def test_experiment_deadline_is_min_of_both(self):
        b = Budget(run_timeout_s=10, experiment_timeout_s=4).arm(now=100.0)
        # Early in the run the per-experiment allowance binds...
        assert b.experiment_deadline(started=100.0) == 104.0
        # ...near the end the campaign deadline does.
        assert b.experiment_deadline(started=108.0) == 110.0

    def test_experiment_only_budget(self):
        b = Budget(experiment_timeout_s=4).arm(now=100.0)
        assert b.run_deadline is None
        assert b.experiment_deadline(started=50.0) == 54.0

    def test_nonpositive_timeouts_rejected(self):
        with pytest.raises(BudgetError):
            Budget(run_timeout_s=0)
        with pytest.raises(BudgetError):
            Budget(experiment_timeout_s=-1)

    def test_as_dict_excludes_absolute_deadlines(self):
        b = Budget(run_timeout_s=10, experiment_timeout_s=4).arm()
        assert b.as_dict() == {
            "run_timeout_s": 10, "experiment_timeout_s": 4,
        }

    def test_budget_from_env(self, monkeypatch):
        monkeypatch.delenv(supervise.TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(supervise.EXPERIMENT_TIMEOUT_ENV, raising=False)
        assert budget_from_env() is None
        monkeypatch.setenv(supervise.TIMEOUT_ENV, "30")
        b = budget_from_env()
        assert b.run_timeout_s == 30.0 and b.experiment_timeout_s is None
        monkeypatch.setenv(supervise.EXPERIMENT_TIMEOUT_ENV, "2.5")
        assert budget_from_env().experiment_timeout_s == 2.5

    def test_budget_from_env_rejects_garbage_loudly(self, monkeypatch):
        monkeypatch.setenv(supervise.TIMEOUT_ENV, "soon")
        with pytest.raises(BudgetError):
            budget_from_env()
        monkeypatch.setenv(supervise.TIMEOUT_ENV, "-3")
        with pytest.raises(BudgetError):
            budget_from_env()


class TestCancelToken:
    def test_latch_semantics_first_reason_wins(self):
        t = CancelToken()
        assert not t.cancelled and t.reason is None
        t.cancel("first")
        t.cancel("second")
        assert t.cancelled and t.reason == "first"

    def test_raise_if_cancelled(self):
        t = CancelToken()
        t.raise_if_cancelled()  # untripped: no-op
        t.cancel("stop now")
        with pytest.raises(CancelledRun, match="stop now"):
            t.raise_if_cancelled()

    def test_reset_rearms(self):
        t = CancelToken()
        t.cancel("x")
        t.reset()
        assert not t.cancelled and t.reason is None

    def test_cancelled_run_is_not_keyboard_interrupt(self):
        # The pipeline's `except Exception` boundary must contain it.
        assert not issubclass(CancelledRun, KeyboardInterrupt)
        assert issubclass(CancelledRun, Exception)


class TestSignalHandlers:
    def test_sigint_routes_into_token_and_restores(self):
        t = CancelToken()
        previous = signal.getsignal(signal.SIGINT)
        restore = install_signal_handlers(t, signals=(signal.SIGINT,))
        try:
            assert signal.getsignal(signal.SIGINT) is not previous
            os.kill(os.getpid(), signal.SIGINT)
            assert t.cancelled
            assert t.reason == "signal:SIGINT"
            # First delivery already restored the previous handler: a
            # second signal would behave as if never supervised.
            assert signal.getsignal(signal.SIGINT) is previous
        finally:
            restore()
        assert signal.getsignal(signal.SIGINT) is previous

    def test_non_main_thread_installs_nothing(self):
        t = CancelToken()
        before = signal.getsignal(signal.SIGTERM)
        result = {}

        def worker():
            result["restore"] = install_signal_handlers(
                t, signals=(signal.SIGTERM,)
            )

        th = threading.Thread(target=worker)
        th.start()
        th.join()
        assert signal.getsignal(signal.SIGTERM) is before
        result["restore"]()  # the no-op restore


class TestBackoffPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        p = BackoffPolicy(retries=3, base_s=0.01, factor=2.0,
                          max_s=0.03, jitter=0.25)
        a = list(p.delays("cache-read"))
        b = list(p.delays("cache-read"))
        assert a == b  # jitter is hashed, not random
        assert len(a) == 3
        for raw, got in zip([0.01, 0.02, 0.03], a):
            assert raw <= got <= raw * 1.25
        assert list(p.delays("other-key")) != a

    def test_run_retries_transient_then_succeeds(self):
        calls = {"n": 0}
        retries = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        p = BackoffPolicy(retries=2)
        out = p.run(flaky, (OSError,), key="k",
                    on_retry=lambda i, e: retries.append(i),
                    sleep=lambda s: None)
        assert out == "ok"
        assert calls["n"] == 3
        assert retries == [0, 1]

    def test_run_final_failure_propagates(self):
        def always():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            BackoffPolicy(retries=1).run(
                always, (OSError,), key="k", sleep=lambda s: None
            )

    def test_run_does_not_catch_other_exceptions(self):
        def boom():
            raise ValueError("task bug")

        with pytest.raises(ValueError):
            BackoffPolicy(retries=2).run(
                boom, (OSError,), key="k", sleep=lambda s: None
            )


class TestCircuitBreaker:
    def test_opens_after_threshold_and_stays_open(self):
        b = CircuitBreaker("x", threshold=2)
        assert b.record_failure("one") is False
        assert b.record_failure("two") is True  # just opened
        assert b.open
        assert "two" in b.opened_reason
        b.record_success()  # one-way: success cannot close it
        assert b.open
        assert b.record_failure("three") is False  # already open

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("x", threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert not b.open  # never two *consecutive* failures

    def test_registry_shared_and_reports_tripped_only(self):
        reset_breakers()
        assert breaker("a") is breaker("a")
        assert breaker_states() == {}  # untripped: invisible
        breaker("a").record_failure("warmup")
        states = breaker_states()
        assert set(states) == {"a"}
        assert states["a"]["total_trips"] == 1
        reset_breakers()
        assert breaker_states() == {}


class TestModuleState:
    def test_inactive_by_default(self):
        assert not supervise.active()
        supervise.check("anywhere")  # no budget, no token: no-op

    def test_bounded_budget_activates(self):
        supervise.set_budget(Budget(run_timeout_s=100).arm())
        assert supervise.active()
        supervise.check("early")  # within budget: fine

    def test_unbounded_budget_does_not_activate(self):
        supervise.set_budget(Budget())
        assert not supervise.active()

    def test_task_deadline_enforced_by_check(self):
        supervise.set_budget(
            Budget(experiment_timeout_s=0.0001).arm(now=0.0)
        )
        supervise.begin_task("fig2", now=0.0)
        # monotonic "now" is far past deadline computed from now=0.
        with pytest.raises(DeadlineExceeded, match="fig2"):
            supervise.check("step 3")

    def test_run_deadline_enforced_by_check(self):
        supervise.set_budget(Budget(run_timeout_s=0.0001).arm(now=0.0))
        with pytest.raises(DeadlineExceeded, match="run exceeded"):
            supervise.check()

    def test_cancellation_beats_deadline(self):
        supervise.set_budget(Budget(run_timeout_s=0.0001).arm(now=0.0))
        supervise.token().cancel("user said stop")
        with pytest.raises(CancelledRun, match="user said stop"):
            supervise.check()

    def test_end_task_clears_deadline(self):
        supervise.set_budget(
            Budget(experiment_timeout_s=0.0001).arm(now=0.0)
        )
        supervise.begin_task("fig2", now=0.0)
        supervise.end_task()
        supervise.check()  # no task deadline, generous run budget

    def test_default_watchdog_follows_budget(self):
        assert supervise.default_watchdog_s() is None
        supervise.set_budget(Budget(experiment_timeout_s=7.0).arm())
        assert supervise.default_watchdog_s() == 7.0
        supervise.set_budget(Budget(experiment_timeout_s=7.0))  # unarmed
        assert supervise.default_watchdog_s() is None

    def test_install_signals_activates(self):
        assert not supervise.active()
        restore = supervise.install_signals()
        try:
            assert supervise.active()
        finally:
            restore()
        assert not supervise.active()

    def test_reset_clears_everything(self):
        supervise.set_budget(Budget(run_timeout_s=1).arm())
        supervise.begin_task("x")
        supervise.token().cancel("y")
        breaker("z").record_failure()
        supervise.reset()
        assert not supervise.active()
        assert supervise.current_budget() is None
        assert not supervise.token().cancelled
        assert breaker_states() == {}


class TestSupervisionObserver:
    def test_checks_run_at_boundaries(self):
        seen = []
        obs = SupervisionObserver(check=seen.append)
        obs.on_run_start([])
        from repro.sim.observer import PhaseEvent, ResolveEvent

        obs.on_resolve(ResolveEvent(step=3, resolved={}))
        obs.on_phase_complete(PhaseEvent(
            program_id=0, phase_name="conj_grad", wall_seconds=1.0,
            mean_cpi=1.0, bus_utilization=0.1,
        ))
        assert seen == ["run-start", "step 3", "phase 'conj_grad'"]

    def test_engine_attaches_observer_only_when_active(self, study):
        from repro.sim.engine import Engine
        from repro.machine.configurations import CONFIGURATIONS

        config = CONFIGURATIONS["serial"]
        workload = study.workload("cg")
        # Active supervision with an already-cancelled token: the run
        # must die at the very first checkpoint.
        supervise.token().cancel("drill")
        engine = Engine(config)
        with pytest.raises(CancelledRun, match="drill"):
            engine.run_single(workload)
        # Inactive supervision: same run completes untouched.
        supervise.reset()
        result = Engine(config).run_single(workload)
        assert result.programs[0].runtime_seconds > 0
