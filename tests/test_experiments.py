"""Tests for the experiment drivers and registry."""

import pytest

from repro.experiments import (
    fig2_single_program,
    fig3_speedup,
    fig4_multiprogram,
    fig5_crossproduct,
    registry,
    sec3_lmbench,
    table2_avg_speedup,
)


# The shared ``study`` fixture lives in tests/conftest.py.


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        ids = set(registry.EXPERIMENTS)
        assert {"sec3-lmbench", "fig2", "fig3", "table2", "fig4",
                "fig5", "ablations"} <= ids

    def test_get_unknown(self):
        with pytest.raises(KeyError, match="available"):
            registry.get("fig9")

    def test_entries_reference_importable_modules(self):
        import importlib

        for entry in registry.EXPERIMENTS.values():
            module = importlib.import_module(entry.module)
            assert hasattr(module, "run"), entry.id
            assert hasattr(module, "report"), entry.id

    def test_every_entry_runs_reports_and_round_trips_json(self):
        """Smoke: ``run_experiment`` succeeds for every registered id, the
        driver's ``report`` renders its result, and the structured result
        survives a JSON round-trip with stable keys."""
        import json

        for entry in registry.EXPERIMENTS.values():
            result = registry.run_experiment(entry.id)
            assert result is not None, entry.id
            text = entry.render_text(result)
            assert isinstance(text, str) and text.strip(), entry.id

            payload = entry.json_payload(result)
            assert payload["experiment"] == entry.id
            assert payload["result"] == result.to_dict(), entry.id
            encoded = json.dumps(payload, indent=2, sort_keys=True)
            decoded = json.loads(encoded)
            assert decoded == json.loads(
                json.dumps(payload, indent=2, sort_keys=True)
            ), entry.id
            assert set(decoded) == {
                "experiment", "paper_artifact", "description",
                "tags", "requires", "result",
            }, entry.id

    def test_entries_carry_metadata(self):
        for entry in registry.EXPERIMENTS.values():
            assert entry.tags, entry.id
            assert entry.cost_estimate > 0, entry.id
            for dep in entry.requires:
                assert dep in registry.EXPERIMENTS, (entry.id, dep)

    def test_execution_waves_order_dependencies(self):
        entries = registry.select(only=["fig3", "table2"])
        waves = registry.execution_waves(entries)
        assert [e.id for e in waves[0]] == ["fig3"]
        assert [e.id for e in waves[1]] == ["table2"]

    def test_execution_waves_ignore_deps_outside_selection(self):
        entries = registry.select(only=["table2"])
        waves = registry.execution_waves(entries)
        assert [[e.id for e in w] for w in waves] == [["table2"]]

    def test_select_by_tag(self):
        ids = {e.id for e in registry.select(only=["platform"])}
        assert ids == {"sec3-lmbench", "omp-overheads"}

    def test_select_unknown_token(self):
        with pytest.raises(KeyError, match="valid"):
            registry.select(only=["not-a-thing"])


class TestSec3Driver:
    def test_report_contains_all_rows(self):
        result = sec3_lmbench.run()
        text = sec3_lmbench.report(result)
        for needle in ("L1 latency", "L2 latency", "memory latency",
                       "read BW", "write BW"):
            assert needle in text

    def test_measured_close_to_paper(self):
        result = sec3_lmbench.run()
        for key in ("l1_ns", "l2_ns", "memory_ns"):
            assert result.plateaus[key] == pytest.approx(
                sec3_lmbench.PAPER_VALUES[key], rel=0.06
            )


class TestFig2Driver:
    def test_all_panels_populated(self, study):
        result = fig2_single_program.run(
            study, benchmarks=["EP", "CG"], configs=["ht_off_2_1"]
        )
        for panel in fig2_single_program.PANELS:
            assert set(result.panels[panel]) == {"EP", "CG"}
            for bench in ("EP", "CG"):
                assert "serial" in result.panels[panel][bench]
                assert "ht_off_2_1" in result.panels[panel][bench]

    def test_report_renders(self, study):
        result = fig2_single_program.run(
            study, benchmarks=["EP"], configs=["ht_off_2_1"]
        )
        text = fig2_single_program.report(result)
        assert "l1_miss_rate" in text and "cpi" in text


class TestFig3Driver:
    def test_table_and_average_row(self, study):
        result = fig3_speedup.run(study)
        text = fig3_speedup.report(result)
        assert "AVERAGE" in text
        assert result.table.get("EP", "ht_off_4_2") > 3.5


class TestTable2Driver:
    def test_seven_architectures(self, study):
        result = table2_avg_speedup.run(study)
        assert len(result.averages) == 7
        text = table2_avg_speedup.report(result)
        assert "CMP-based SMP" in text
        assert "paper: 3.6%" in text

    def test_slowdown_metrics_consistent(self, study):
        result = table2_avg_speedup.run(study)
        assert -1.0 < result.ht_on_8_2_slowdown < 1.0
        assert -1.0 < result.cmt_vs_cmp_smp_slowdown < 1.0


class TestFig4Driver:
    def test_series_labels(self, study):
        result = fig4_multiprogram.run(study, configs=["ht_off_4_2"])
        labels = set(result.panels["cpi"])
        assert "CG (CG/FT)" in labels
        assert "FT (CG/FT)" in labels
        assert "FT/FT" in labels
        assert "CG/CG" in labels

    def test_speedups_for_all_workloads(self, study):
        result = fig4_multiprogram.run(study, configs=["ht_off_4_2"])
        assert set(result.speedups) == {"CG/FT", "FT/FT", "CG/CG"}

    def test_report_renders(self, study):
        result = fig4_multiprogram.run(study, configs=["ht_off_4_2"])
        text = fig4_multiprogram.report(result)
        assert "multiprogrammed speedup" in text


class TestFig5Driver:
    def test_sample_counts(self, study):
        result = fig5_crossproduct.run(
            study, benchmarks=["CG", "FT", "EP"], configs=["ht_off_4_2"]
        )
        # 6 unordered pairs (with replacement) x 2 samples each.
        assert len(result.samples["ht_off_4_2"]) == 12

    def test_report_renders(self, study):
        result = fig5_crossproduct.run(
            study, benchmarks=["CG", "EP"], configs=["ht_off_4_2", "ht_on_8_2"]
        )
        text = fig5_crossproduct.report(result)
        assert "winner tally" in text

    def test_run_experiment_via_registry(self):
        result = registry.run_experiment("sec3-lmbench")
        assert result.plateaus["l1_ns"] > 0
