"""Physical topology of a chip-multithreaded SMP.

A system is a tree: ``SystemTopology`` -> ``Chip`` -> ``Core`` ->
``HWContext`` (a hardware thread, i.e. a logical CPU as seen by the OS).

Labels follow the paper's Figure 1: with Hyper-Threading enabled the eight
logical processors of the two-chip system are ``A0..A7`` (chip 0 core 0
holds A0/A1, chip 0 core 1 holds A2/A3, chip 1 core 0 holds A4/A5, chip 1
core 1 holds A6/A7); with HT disabled the four logical processors are
``B0..B3`` (chip 0 holds B0/B1, chip 1 holds B2/B3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class HWContext:
    """One hardware thread (logical CPU).

    Attributes:
        label: paper-style label, e.g. ``"A3"`` or ``"B1"``.
        chip: index of the physical chip (package).
        core: index of the core within the chip.
        thread: SMT thread slot within the core (0 or 1).
        cpu_id: flat logical CPU number assigned by the (simulated) OS.
        socket: NUMA node the chip belongs to.  On Paxville each package
            is its own FSB agent behind one UMA memory controller, so
            socket == chip; multi-chip-module or NUMA machines group
            several chips per socket.
    """

    label: str
    chip: int
    core: int
    thread: int
    cpu_id: int
    socket: int = 0

    @property
    def core_key(self) -> Tuple[int, int]:
        """Globally unique (chip, core) pair identifying the physical core."""
        return (self.chip, self.core)

    def shares_core_with(self, other: "HWContext") -> bool:
        """True when both contexts are SMT siblings on the same core."""
        return self.core_key == other.core_key and self is not other

    def shares_chip_with(self, other: "HWContext") -> bool:
        """True when both contexts live on the same physical package."""
        return self.chip == other.chip

    def shares_socket_with(self, other: "HWContext") -> bool:
        """True when both contexts live on the same NUMA node."""
        return self.socket == other.socket


@dataclass
class Core:
    """A physical core holding one or two hardware contexts."""

    chip: int
    index: int
    contexts: List[HWContext] = field(default_factory=list)

    @property
    def smt_enabled(self) -> bool:
        return len(self.contexts) > 1

    @property
    def key(self) -> Tuple[int, int]:
        return (self.chip, self.index)


@dataclass
class Chip:
    """A physical package (socket) holding cores that share one FSB port."""

    index: int
    cores: List[Core] = field(default_factory=list)

    @property
    def contexts(self) -> List[HWContext]:
        return [ctx for core in self.cores for ctx in core.contexts]


@dataclass
class SystemTopology:
    """Complete system: chips, cores and hardware contexts.

    ``contexts`` is ordered by ``cpu_id``; lookup helpers resolve labels and
    sibling relationships.  Topologies are immutable once built.
    """

    chips: List[Chip]
    ht_enabled: bool

    def __post_init__(self) -> None:
        self._by_label: Dict[str, HWContext] = {
            ctx.label: ctx for ctx in self.contexts
        }

    @property
    def contexts(self) -> List[HWContext]:
        return sorted(
            (ctx for chip in self.chips for ctx in chip.contexts),
            key=lambda c: c.cpu_id,
        )

    @property
    def cores(self) -> List[Core]:
        return [core for chip in self.chips for core in chip.cores]

    @property
    def n_chips(self) -> int:
        return len(self.chips)

    @property
    def n_cores(self) -> int:
        return sum(len(chip.cores) for chip in self.chips)

    @property
    def n_contexts(self) -> int:
        return sum(len(chip.contexts) for chip in self.chips)

    @property
    def n_sockets(self) -> int:
        return len({ctx.socket for ctx in self.contexts})

    def context(self, label: str) -> HWContext:
        """Resolve a paper-style label (``"A5"``/``"B2"``) to its context."""
        try:
            return self._by_label[label]
        except KeyError:
            raise KeyError(
                f"no hardware context labeled {label!r}; "
                f"available: {sorted(self._by_label)}"
            ) from None

    def siblings(self, ctx: HWContext) -> List[HWContext]:
        """SMT siblings sharing the core with ``ctx`` (excluding itself)."""
        return [
            other
            for other in self.contexts
            if other.core_key == ctx.core_key and other.label != ctx.label
        ]

    def core_of(self, ctx: HWContext) -> Core:
        for chip in self.chips:
            for core in chip.cores:
                if core.key == ctx.core_key:
                    return core
        raise KeyError(f"context {ctx.label} not part of this topology")

    def chip_of(self, ctx: HWContext) -> Chip:
        return self.chips[ctx.chip]

    def restrict(self, labels: List[str]) -> "SystemTopology":
        """Return a topology exposing only the given context labels.

        Mirrors the paper's CPU-masking methodology (``maxcpus=`` plus
        explicit masking): the remaining contexts keep their identity so
        that resource-sharing relationships (SMT siblings, shared FSB) are
        preserved.
        """
        keep = set(labels)
        unknown = keep - set(self._by_label)
        if unknown:
            raise KeyError(f"unknown context labels: {sorted(unknown)}")
        chips: List[Chip] = []
        for chip in self.chips:
            new_cores = []
            for core in chip.cores:
                kept = [ctx for ctx in core.contexts if ctx.label in keep]
                if kept:
                    new_cores.append(
                        Core(chip=core.chip, index=core.index, contexts=kept)
                    )
            if new_cores:
                chips.append(Chip(index=chip.index, cores=new_cores))
        return SystemTopology(chips=chips, ht_enabled=self.ht_enabled)


def build_topology(
    n_chips: int = 2,
    cores_per_chip: int = 2,
    ht_enabled: bool = True,
    label_prefix: Optional[str] = None,
    threads_per_core: Optional[int] = None,
    chips_per_socket: int = 1,
) -> SystemTopology:
    """Build a full system topology with paper-style labels.

    Args:
        n_chips: number of physical packages.
        cores_per_chip: cores per package (2 for Paxville).
        ht_enabled: when True each core exposes its SMT contexts and
            labels use the ``A`` prefix; otherwise one context per core,
            ``B`` prefix.
        label_prefix: override the automatic A/B prefix (useful for tests).
        threads_per_core: SMT width of one core when HT is enabled
            (default 2, the paper's Hyper-Threading); HT off always
            exposes one context per core.
        chips_per_socket: chips sharing one NUMA node (1 everywhere
            except multi-chip-module packages).

    Returns:
        A :class:`SystemTopology`.
    """
    prefix = label_prefix if label_prefix is not None else ("A" if ht_enabled else "B")
    if threads_per_core is None:
        threads_per_core = 2
    smt = threads_per_core if ht_enabled else 1
    if smt < 1 or n_chips < 1 or cores_per_chip < 1 or chips_per_socket < 1:
        raise ValueError("topology dimensions must be >= 1")
    chips: List[Chip] = []
    cpu_id = 0
    for c in range(n_chips):
        cores = []
        for k in range(cores_per_chip):
            contexts = []
            for t in range(smt):
                contexts.append(
                    HWContext(
                        label=f"{prefix}{cpu_id}",
                        chip=c,
                        core=k,
                        thread=t,
                        cpu_id=cpu_id,
                        socket=c // chips_per_socket,
                    )
                )
                cpu_id += 1
            cores.append(Core(chip=c, index=k, contexts=contexts))
        chips.append(Chip(index=c, cores=cores))
    return SystemTopology(chips=chips, ht_enabled=ht_enabled)
