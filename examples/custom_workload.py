#!/usr/bin/env python
"""Characterize your own application with the public workload API.

Builds a custom two-phase workload — a serial setup followed by a
parallel hash-join-like phase (streaming probe input + random lookups
into a shared hash table) — and studies how it scales across the
paper's machine configurations.  This is the route for modeling codes
outside the NAS suite.
"""

from repro import Study
from repro.machine import get_config
from repro.sim import Engine
from repro.trace import AccessMix, Phase, RandomPattern, StreamingPattern, Workload


def build_hash_join(build_mb: float = 64.0, probe_gb: float = 2.0) -> Workload:
    """A hash join: build a shared table, then stream probes against it."""
    table_bytes = build_mb * 1e6
    probe_bytes = probe_gb * 1e9

    build_phase = Phase(
        name="build",
        instructions=table_bytes / 16 * 12,      # ~12 uops per inserted row
        mem_ops_per_instr=0.45,
        access_mix=AccessMix.of(
            (0.7, RandomPattern(footprint_bytes=table_bytes,
                                partitioned=False)),
            (0.3, StreamingPattern(footprint_bytes=table_bytes,
                                   partitioned=False, stride_bytes=16)),
        ),
        code_footprint_uops=2500.0,
        code_footprint_bytes=6000.0,
        branches_per_instr=0.12,
        branch_misp_intrinsic=0.02,
        branch_sites=300,
        ilp=1.2,
        parallel=False,
    )
    probe_phase = Phase(
        name="probe",
        instructions=probe_bytes / 16 * 18,      # ~18 uops per probe
        mem_ops_per_instr=0.5,
        access_mix=AccessMix.of(
            # The probe stream is partitioned across the team...
            (0.45, StreamingPattern(footprint_bytes=probe_bytes,
                                    partitioned=True, stride_bytes=16,
                                    passes=1.0)),
            # ...while every thread hits the same shared hash table.
            (0.40, RandomPattern(footprint_bytes=table_bytes,
                                 partitioned=False, shared_fraction=0.9)),
            (0.15, RandomPattern(footprint_bytes=4096.0)),
        ),
        code_footprint_uops=3500.0,
        code_footprint_bytes=8000.0,
        branches_per_instr=0.14,
        branch_misp_intrinsic=0.03,          # key-dependent comparisons
        branch_sites=450,
        ilp=1.25,
        parallel=True,
        prefetchability=0.4,
        branch_history_sensitivity=0.7,
        mlp=3.0,
    )
    return Workload(name="HASHJOIN", problem_class="-",
                    phases=(build_phase, probe_phase))


def main() -> None:
    workload = build_hash_join()
    serial = Engine(get_config("serial")).run_single(workload)
    print(f"hash join, serial: {serial.runtime_seconds:.2f} s "
          f"(CPI {serial.metrics(0).cpi:.2f})")
    print()
    print(f"{'config':>11}  {'speedup':>8}  {'CPI':>6}  {'L2 miss':>8}  "
          f"{'branch pred':>11}")
    for name in Study.paper_configs():
        r = Engine(get_config(name)).run_single(workload)
        m = r.metrics(0)
        s = serial.runtime_seconds / r.runtime_seconds
        print(f"{name:>11}  {s:8.2f}  {m.cpi:6.2f}  "
              f"{m.l2_miss_rate:7.1%}  {m.branch_prediction_rate:10.1%}")

    print()
    print("The shared hash table benefits from HT sibling sharing, while")
    print("the key-dependent branches suffer from shared-history pollution")
    print("— the same tension the paper documents for CG.")


if __name__ == "__main__":
    main()
