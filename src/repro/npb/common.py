"""Shared NPB definitions: problem classes and sizing helpers."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class ProblemClass(enum.Enum):
    """NAS problem classes, smallest to largest."""

    S = "S"
    W = "W"
    A = "A"
    B = "B"
    C = "C"

    @classmethod
    def from_str(cls, letter: str) -> "ProblemClass":
        try:
            return cls[letter.upper()]
        except KeyError:
            raise ValueError(
                f"unknown problem class {letter!r}; expected one of S W A B C"
            ) from None


#: Average uops per floating-point operation in NetBurst traces of the
#: NAS codes (address arithmetic, loads/stores and loop control included).
FLOP_TO_UOPS = 2.2

#: Average x86 instruction bytes per uop (for code footprints).
BYTES_PER_UOP = 2.3


@dataclass(frozen=True)
class BenchmarkInfo:
    """Static description of one benchmark."""

    name: str
    kind: str  # "kernel" or "application"
    description: str
    memory_bound_score: float  # 0 (compute bound) .. 1 (memory bound)


def doubles(n: float) -> float:
    """Bytes of ``n`` double-precision values."""
    return 8.0 * n


def check_class(problem_class: ProblemClass, dims: Dict[ProblemClass, tuple]):
    """Fetch a class entry with a uniform error message."""
    try:
        return dims[problem_class]
    except KeyError:
        raise ValueError(
            f"problem class {problem_class.value} not defined for this "
            f"benchmark"
        ) from None
