#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files and flag regressions.

Usage::

    python tools/bench_compare.py BASELINE.json NEW.json [--threshold 0.25]
    python tools/bench_compare.py BENCH_baseline.json /tmp/bench_new.json
    python tools/bench_compare.py --speedup REPORT.json SLOW_NAME FAST_NAME \
        --threshold 3.0

Benchmarks are matched by name; a benchmark regresses when its new
median exceeds the baseline median by more than ``--threshold``
(fractional, default 0.25 = 25 %).  Exit status is 1 when any benchmark
regresses, so the script can gate CI.  Benchmarks present in only one
file are reported but never fail the comparison (they have nothing to
regress against).

``--speedup`` asserts a ratio *within* one report instead: the median of
``SLOW_NAME`` divided by the median of ``FAST_NAME`` must be at least
``--threshold`` (a multiplier here, not a fraction).  This gates
optimizations that ship both paths in one benchmark file — e.g. the
batched sweep engine, whose scalar and batched variants are
parameterized cases of the same benchmark.

Medians are compared rather than means because benchmark distributions
on shared machines are long-tailed: one noisy outlier inflates a mean
but barely moves a median.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict


def load_medians(path: Path) -> Dict[str, float]:
    """Map benchmark name -> median seconds from a pytest-benchmark
    JSON report."""
    with open(path) as fh:
        data = json.load(fh)
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in data.get("benchmarks", [])
    }


def compare(
    baseline: Dict[str, float],
    new: Dict[str, float],
    threshold: float,
) -> int:
    """Print a comparison table; return the number of regressions."""
    regressions = 0
    width = max((len(n) for n in baseline | new), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'new':>12}  "
          f"{'ratio':>7}  verdict")
    for name in sorted(baseline | new):
        old_t, new_t = baseline.get(name), new.get(name)
        if old_t is None or new_t is None:
            which = "new run" if old_t is None else "baseline"
            print(f"{name:<{width}}  {'-':>12}  {'-':>12}  {'-':>7}  "
                  f"only in {which} (skipped)")
            continue
        ratio = new_t / old_t if old_t else float("inf")
        if ratio > 1.0 + threshold:
            verdict = f"REGRESSION (> +{threshold:.0%})"
            regressions += 1
        elif ratio < 1.0 - threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<{width}}  {old_t * 1e3:>10.3f}ms  "
              f"{new_t * 1e3:>10.3f}ms  {ratio:>6.2f}x  {verdict}")
    return regressions


def assert_speedup(
    medians: Dict[str, float],
    slow_name: str,
    fast_name: str,
    threshold: float,
) -> int:
    """Check ``median(slow) / median(fast) >= threshold``; return 0/1."""
    missing = [n for n in (slow_name, fast_name) if n not in medians]
    if missing:
        print(f"benchmark(s) not in report: {', '.join(missing)}; "
              f"available: {', '.join(sorted(medians)) or '-'}")
        return 1
    slow_t, fast_t = medians[slow_name], medians[fast_name]
    speedup = slow_t / fast_t if fast_t else float("inf")
    print(f"{slow_name}: {slow_t * 1e3:.3f}ms")
    print(f"{fast_name}: {fast_t * 1e3:.3f}ms")
    print(f"speedup: {speedup:.2f}x (required: >= {threshold:.2f}x)")
    if speedup < threshold:
        print("speedup below threshold.")
        return 1
    print("speedup OK.")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regress vs a baseline."
    )
    parser.add_argument(
        "--speedup", action="store_true",
        help="speedup-assertion mode: arguments become REPORT.json "
             "SLOW_NAME FAST_NAME, and --threshold is the minimum "
             "median(SLOW)/median(FAST) ratio",
    )
    parser.add_argument("baseline", type=Path,
                        help="pytest-benchmark JSON baseline "
                             "(--speedup: the single report)")
    parser.add_argument("new",
                        help="pytest-benchmark JSON from the new code "
                             "(--speedup: the slow benchmark's name)")
    parser.add_argument("fast", nargs="?", default=None,
                        help="--speedup only: the fast benchmark's name")
    parser.add_argument("--threshold", type=float, default=None,
                        help="allowed fractional slowdown (default 0.25); "
                             "with --speedup, the minimum speedup ratio "
                             "(default 1.0)")
    args = parser.parse_args(argv)

    if args.speedup:
        if args.fast is None:
            parser.error("--speedup needs REPORT.json SLOW_NAME FAST_NAME")
        threshold = 1.0 if args.threshold is None else args.threshold
        if threshold <= 0:
            parser.error("--threshold must be > 0 with --speedup")
        try:
            medians = load_medians(args.baseline)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read benchmark report: {exc}")
        return assert_speedup(medians, args.new, args.fast, threshold)

    if args.fast is not None:
        parser.error("three positional arguments only make sense "
                     "with --speedup")
    threshold = 0.25 if args.threshold is None else args.threshold
    if threshold < 0:
        parser.error("--threshold must be >= 0")

    try:
        baseline = load_medians(args.baseline)
        new = load_medians(Path(args.new))
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read benchmark report: {exc}")
    regressions = compare(baseline, new, threshold)
    if regressions:
        print(f"\n{regressions} benchmark(s) regressed beyond "
              f"{threshold:.0%}.")
        return 1
    print("\nNo regressions beyond the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
