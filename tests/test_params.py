"""Tests for machine parameter validation and derived quantities."""

import dataclasses

import pytest

from repro.machine.params import (
    BranchPredictorParams,
    CacheParams,
    TLBParams,
    paxville_params,
)


class TestCacheParams:
    def test_geometry(self):
        p = CacheParams(size_bytes=16384, line_bytes=64, associativity=8,
                        latency_cycles=4.0)
        assert p.n_lines == 256
        assert p.n_sets == 32

    def test_rejects_nonmultiple_size(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheParams(size_bytes=1000, line_bytes=64, associativity=2,
                        latency_cycles=1.0)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError, match="associativity"):
            CacheParams(size_bytes=1024, line_bytes=64, associativity=5,
                        latency_cycles=1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheParams(size_bytes=0, line_bytes=64, associativity=1,
                        latency_cycles=1.0)


class TestTLBParams:
    def test_reach(self):
        assert TLBParams(entries=64).reach_bytes == 64 * 4096


class TestPaxvilleDefaults:
    def test_clock_and_latencies(self):
        p = paxville_params()
        assert p.core.clock_hz == pytest.approx(2.8e9)
        # Paper LMbench: L1 1.43 ns = 4 cycles at 2.8 GHz.
        assert p.l1d.latency_cycles * p.core.cycle_ns == pytest.approx(
            1.43, rel=0.01
        )
        assert p.memory_latency_cycles == pytest.approx(
            136.9 * 2.8, rel=1e-6
        )

    def test_cache_geometry_matches_paxville(self):
        p = paxville_params()
        assert p.l1d.size_bytes == 16 * 1024
        assert p.l2.size_bytes == 1024 * 1024
        assert p.trace_cache.size_bytes == 12 * 1024  # 12 K uops

    def test_bandwidths_match_paper(self):
        p = paxville_params()
        assert p.bus.chip_read_bw == pytest.approx(3.57e9)
        assert p.bus.system_read_bw == pytest.approx(4.43e9)

    def test_with_overrides_replaces_field(self):
        p = paxville_params()
        p2 = p.with_overrides(memory_latency_ns=200.0)
        assert p2.memory_latency_ns == 200.0
        assert p.memory_latency_ns == pytest.approx(136.9)  # original intact

    def test_frozen(self):
        p = paxville_params()
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.memory_latency_ns = 1.0  # type: ignore[misc]


class TestBranchPredictorParams:
    def test_defaults_power_of_two(self):
        p = BranchPredictorParams()
        assert p.bht_entries & (p.bht_entries - 1) == 0
