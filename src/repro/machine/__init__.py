"""Machine model: topology, microarchitectural parameters, and the paper's
Table-1 processor configurations.

The simulated platform mirrors the Dell PowerEdge 2850 studied in the paper:
two dual-core 2.8 GHz Hyper-Threaded Intel Xeon (Paxville) chips, each core
with a 12 K-uop execution trace cache, a 16 KB L1 data cache, a private 1 MB
L2 cache, and each chip sharing an 800 MHz front-side bus to dual-channel
DDR-2 memory.
"""

from repro.machine.topology import (
    HWContext,
    Core,
    Chip,
    SystemTopology,
    build_topology,
)
from repro.machine.params import (
    CacheParams,
    TLBParams,
    BranchPredictorParams,
    BusParams,
    ContentionParams,
    CoreParams,
    MachineParams,
    paxville_params,
)
from repro.machine.spec import (
    MachineSpec,
    SpecError,
    SpecOverride,
    load_spec,
)
from repro.machine.registry import (
    DEFAULT_MACHINE,
    UnknownMachineError,
    default_params,
    list_machines,
    resolve_machine,
)
from repro.machine.configurations import (
    Architecture,
    MachineConfig,
    CONFIGURATIONS,
    COMPARISON_GROUPS,
    get_config,
    multithreaded_configs,
)

__all__ = [
    "HWContext",
    "Core",
    "Chip",
    "SystemTopology",
    "build_topology",
    "CacheParams",
    "TLBParams",
    "BranchPredictorParams",
    "BusParams",
    "ContentionParams",
    "CoreParams",
    "MachineParams",
    "paxville_params",
    "MachineSpec",
    "SpecError",
    "SpecOverride",
    "load_spec",
    "DEFAULT_MACHINE",
    "UnknownMachineError",
    "default_params",
    "list_machines",
    "resolve_machine",
    "Architecture",
    "MachineConfig",
    "CONFIGURATIONS",
    "COMPARISON_GROUPS",
    "get_config",
    "multithreaded_configs",
]
