#!/usr/bin/env python
"""Quickstart: run one NAS benchmark on one machine configuration.

Simulates CG (class B) on a single Hyper-Threaded dual-core chip
("CMT", HT on 2-4-1), prints the wall clock, speedup over serial, and
the hardware-counter metrics the paper's Figure 2 reports.
"""

from repro import Study


def main() -> None:
    study = Study(problem_class="B")

    serial = study.run("CG", "serial")
    cmt = study.run("CG", "ht_on_4_1")

    print("CG class B on the simulated Dell PowerEdge 2850")
    print(f"  serial runtime:    {serial.runtime_seconds:8.1f} s")
    print(f"  CMT (HTon-2-4-1):  {cmt.runtime_seconds:8.1f} s")
    print(f"  speedup:           {study.speedup('CG', 'ht_on_4_1'):8.2f} x")
    print()

    m = cmt.metrics(0)
    print("hardware counters (CMT run):")
    print(f"  CPI:                    {m.cpi:6.2f}")
    print(f"  L1-D miss rate:         {m.l1_miss_rate:6.1%}")
    print(f"  L2 miss rate (local):   {m.l2_miss_rate:6.1%}")
    print(f"  trace-cache miss rate:  {m.tc_miss_rate:6.1%}")
    print(f"  branch prediction:      {m.branch_prediction_rate:6.1%}")
    print(f"  cycles stalled:         {m.stall_fraction:6.1%}")
    print(f"  prefetch bus accesses:  {m.prefetch_bus_fraction:6.1%}")


if __name__ == "__main__":
    main()
