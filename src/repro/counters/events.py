"""PMU event taxonomy.

Names parallel the NetBurst events the paper samples with VTune 7.2:
trace-cache deliver/build misses, L1/L2 references and misses, ITLB/DTLB
misses, cycle/instruction counts, stall cycles, branch retirement and
mispredicts, and front-side-bus transaction counts split into demand and
prefetch.
"""

from __future__ import annotations

import enum


class Event(enum.Enum):
    """Countable hardware events."""

    CYCLES = "cycles"
    INSTR_RETIRED = "instr_retired"
    STALL_CYCLES = "stall_cycles"

    TC_DELIVER = "tc_deliver"          # trace cache deliver-mode lookups
    TC_MISS = "tc_miss"                # trace cache build-mode entries

    L1D_ACCESS = "l1d_access"
    L1D_MISS = "l1d_miss"
    L2_ACCESS = "l2_access"
    L2_MISS = "l2_miss"

    ITLB_ACCESS = "itlb_access"
    ITLB_MISS = "itlb_miss"
    DTLB_ACCESS = "dtlb_access"
    DTLB_MISS = "dtlb_miss"

    BRANCH_RETIRED = "branch_retired"
    BRANCH_MISPRED = "branch_mispred"

    BUS_TRANS_DEMAND = "bus_trans_demand"
    BUS_TRANS_PREFETCH = "bus_trans_prefetch"

    MACHINE_CLEAR = "machine_clear"
    COHERENCE_TRANSFER = "coherence_transfer"

    # Hierarchy levels beyond the L2 (only emitted on machines that
    # declare them; Paxville artifacts never contain these).
    L3_ACCESS = "l3_access"
    L3_MISS = "l3_miss"
    L4_ACCESS = "l4_access"
    L4_MISS = "l4_miss"

    @property
    def is_ratio_numerator(self) -> bool:
        """True for events that form the numerator of a paper metric."""
        return self in {
            Event.TC_MISS,
            Event.L1D_MISS,
            Event.L2_MISS,
            Event.L3_MISS,
            Event.L4_MISS,
            Event.ITLB_MISS,
            Event.DTLB_MISS,
            Event.BRANCH_MISPRED,
            Event.STALL_CYCLES,
            Event.BUS_TRANS_PREFETCH,
        }


#: (numerator, denominator) pairs defining the paper's rate metrics.
RATE_DEFINITIONS = {
    "tc_miss_rate": (Event.TC_MISS, Event.TC_DELIVER),
    "l1_miss_rate": (Event.L1D_MISS, Event.L1D_ACCESS),
    "l2_miss_rate": (Event.L2_MISS, Event.L2_ACCESS),
    "itlb_miss_rate": (Event.ITLB_MISS, Event.ITLB_ACCESS),
    "dtlb_miss_rate": (Event.DTLB_MISS, Event.DTLB_ACCESS),
    "branch_mispredict_rate": (Event.BRANCH_MISPRED, Event.BRANCH_RETIRED),
    "stall_fraction": (Event.STALL_CYCLES, Event.CYCLES),
}
