"""Wall-time budgets: deadlines for a whole campaign and each experiment.

A :class:`Budget` is a declarative pair of timeouts — one for the whole
``run-all`` campaign, one per experiment — created from the CLI's
``--timeout`` / ``--experiment-timeout`` flags or the ``REPRO_TIMEOUT``
/ ``REPRO_EXPERIMENT_TIMEOUT`` environment.  It stays inert (no
deadline) until :meth:`Budget.arm` stamps the campaign start time;
armed budgets travel to pool workers by pickling (``time.monotonic`` is
the system-wide ``CLOCK_MONOTONIC`` on Linux, so absolute deadlines
compare correctly across processes on one host).

Enforcement is split between two mechanisms, both reading the same
budget:

* **cooperatively** — the :class:`~repro.supervise.observer.
  SupervisionObserver` checks the current task/run deadline at every
  engine step and phase boundary, raising :class:`DeadlineExceeded`
  with provenance (what timed out, by how much);
* **preemptively** — :func:`repro.sim.parallel.parallel_map` uses the
  per-experiment timeout as its hung-worker watchdog, so a worker that
  never reaches a cooperative check point (stuck in a syscall, an
  injected ``hang`` fault) is killed and rescheduled from outside.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Dict, Optional

__all__ = [
    "Budget",
    "BudgetError",
    "DeadlineExceeded",
    "EXPERIMENT_TIMEOUT_ENV",
    "TIMEOUT_ENV",
    "budget_from_env",
]

TIMEOUT_ENV = "REPRO_TIMEOUT"
EXPERIMENT_TIMEOUT_ENV = "REPRO_EXPERIMENT_TIMEOUT"


class BudgetError(ValueError):
    """A malformed timeout value (flag or environment)."""


class DeadlineExceeded(RuntimeError):
    """A supervised run overran its wall-time budget.

    Raised cooperatively at engine step/phase boundaries and at
    pipeline task boundaries.  Inside the experiment pipeline it is
    contained like any other failure — the experiment is recorded as
    failed (``error_type: DeadlineExceeded``), its dependents are
    skipped, and the campaign stays resumable.
    """


@dataclasses.dataclass(frozen=True)
class Budget:
    """Wall-time limits for one campaign.

    ``run_timeout_s`` bounds the whole pipeline run; ``experiment_
    timeout_s`` bounds each experiment individually.  Either may be
    None (unbounded).  ``started_at`` is the campaign's start on the
    monotonic clock; until :meth:`arm` sets it, the budget carries
    intent but enforces nothing.
    """

    run_timeout_s: Optional[float] = None
    experiment_timeout_s: Optional[float] = None
    started_at: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("run_timeout_s", "experiment_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise BudgetError(f"{name} must be > 0, got {value}")

    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        return self.started_at is not None

    @property
    def bounded(self) -> bool:
        """Does this budget limit anything at all?"""
        return (
            self.run_timeout_s is not None
            or self.experiment_timeout_s is not None
        )

    def arm(self, now: Optional[float] = None) -> "Budget":
        """Stamp the campaign start time (idempotent once armed)."""
        if self.armed:
            return self
        return dataclasses.replace(
            self, started_at=time.monotonic() if now is None else now
        )

    # ------------------------------------------------------------------
    @property
    def run_deadline(self) -> Optional[float]:
        """Absolute monotonic deadline of the whole campaign."""
        if self.started_at is None or self.run_timeout_s is None:
            return None
        return self.started_at + self.run_timeout_s

    def experiment_deadline(
        self, started: Optional[float] = None
    ) -> Optional[float]:
        """Absolute deadline for an experiment starting at ``started``:
        the earlier of its own allowance and the campaign deadline."""
        started = time.monotonic() if started is None else started
        candidates = []
        if self.experiment_timeout_s is not None:
            candidates.append(started + self.experiment_timeout_s)
        if self.run_deadline is not None:
            candidates.append(self.run_deadline)
        return min(candidates) if candidates else None

    def run_overdrawn(self, now: Optional[float] = None) -> bool:
        deadline = self.run_deadline
        if deadline is None:
            return False
        return (time.monotonic() if now is None else now) > deadline

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """The manifest form: configured timeouts only.

        Absolute deadlines are deliberately excluded — they differ
        between an interrupted run and its resume, and the manifest
        must stay byte-identical modulo timings.
        """
        return {
            "run_timeout_s": self.run_timeout_s,
            "experiment_timeout_s": self.experiment_timeout_s,
        }


def _parse_timeout(raw: str, origin: str) -> Optional[float]:
    text = raw.strip()
    if not text:
        return None
    try:
        value = float(text)
    except ValueError:
        raise BudgetError(
            f"{origin} must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise BudgetError(f"{origin} must be > 0, got {raw!r}")
    return value


def budget_from_env() -> Optional[Budget]:
    """The budget the environment asks for, or None.

    ``REPRO_TIMEOUT`` bounds the whole campaign and
    ``REPRO_EXPERIMENT_TIMEOUT`` each experiment; malformed values
    raise :class:`BudgetError` (a silent no-op timeout is worse than a
    loud typo).
    """
    run_s = _parse_timeout(os.environ.get(TIMEOUT_ENV, ""), TIMEOUT_ENV)
    exp_s = _parse_timeout(
        os.environ.get(EXPERIMENT_TIMEOUT_ENV, ""), EXPERIMENT_TIMEOUT_ENV
    )
    if run_s is None and exp_s is None:
        return None
    return Budget(run_timeout_s=run_s, experiment_timeout_s=exp_s)
