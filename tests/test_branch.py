"""Tests for the branch predictor: structural gshare + analytic model."""

import numpy as np
import pytest

from repro.cpu.branch import GsharePredictor, analytic_mispredict_rate
from repro.machine.params import BranchPredictorParams
from repro.trace.phase import Phase
from repro.trace.patterns import AccessMix, RandomPattern


def make_phase(**over):
    defaults = dict(
        name="p",
        instructions=1e9,
        mem_ops_per_instr=0.3,
        access_mix=AccessMix.of((1.0, RandomPattern(footprint_bytes=4096.0)),),
        code_footprint_uops=3000.0,
        code_footprint_bytes=7000.0,
        branches_per_instr=0.1,
        branch_misp_intrinsic=0.01,
        branch_sites=300,
        ilp=1.4,
        inner_trip_count=200.0,
    )
    defaults.update(over)
    return Phase(**defaults)


class TestGshareStructural:
    def test_biased_branch_learned(self):
        p = GsharePredictor(BranchPredictorParams())
        pcs = np.full(2000, 0x400, dtype=np.int64)
        outcomes = np.ones(2000, dtype=bool)
        stats = p.run(pcs, outcomes)
        assert stats.mispredict_rate < 0.05

    def test_alternating_pattern_learned_via_history(self):
        """gshare learns T/NT alternation through the history register."""
        p = GsharePredictor(BranchPredictorParams())
        n = 4000
        pcs = np.full(n, 0x400, dtype=np.int64)
        outcomes = np.arange(n) % 2 == 0
        stats = p.run(pcs, outcomes)
        assert stats.mispredict_rate < 0.10

    def test_random_branches_near_half(self):
        p = GsharePredictor(BranchPredictorParams())
        rng = np.random.default_rng(0)
        pcs = rng.integers(0, 1 << 20, 4000).astype(np.int64)
        outcomes = rng.random(4000) < 0.5
        stats = p.run(pcs, outcomes)
        assert 0.35 < stats.mispredict_rate < 0.65

    def test_reset(self):
        p = GsharePredictor(BranchPredictorParams())
        p.predict_and_update(0x10, True)
        p.reset()
        assert p.stats.branches == 0

    def test_length_mismatch(self):
        p = GsharePredictor(BranchPredictorParams())
        with pytest.raises(ValueError):
            p.run(np.zeros(2, dtype=np.int64), np.ones(3, dtype=bool))

    def test_requires_power_of_two_table(self):
        with pytest.raises(ValueError):
            GsharePredictor(BranchPredictorParams(bht_entries=1000))

    def test_prediction_rate_complements(self):
        p = GsharePredictor(BranchPredictorParams())
        p.run(np.zeros(100, dtype=np.int64), np.ones(100, dtype=bool))
        assert p.stats.prediction_rate == pytest.approx(
            1.0 - p.stats.mispredict_rate
        )


class TestAnalyticModel:
    def setup_method(self):
        self.params = BranchPredictorParams()

    def test_floor_is_base_plus_intrinsic(self):
        phase = make_phase(branch_misp_intrinsic=0.02,
                           inner_trip_count=1e9, branch_sites=1)
        rate = analytic_mispredict_rate(phase, self.params)
        assert rate == pytest.approx(
            self.params.base_mispredict_rate + 0.02, abs=1e-3
        )

    def test_short_inner_loops_mispredict_more(self):
        long_loops = make_phase(inner_trip_count=1000.0)
        short_loops = make_phase(inner_trip_count=10.0)
        assert analytic_mispredict_rate(
            short_loops, self.params
        ) > analytic_mispredict_rate(long_loops, self.params)

    def test_trip_division_raises_mispredicts_with_threads(self):
        phase = make_phase(inner_trip_count=100.0, trip_divides=True)
        r1 = analytic_mispredict_rate(phase, self.params, n_threads=1)
        r8 = analytic_mispredict_rate(phase, self.params, n_threads=8)
        assert r8 > r1

    def test_no_trip_division_thread_invariant(self):
        phase = make_phase(inner_trip_count=100.0, trip_divides=False)
        r1 = analytic_mispredict_rate(phase, self.params, n_threads=1)
        r8 = analytic_mispredict_rate(phase, self.params, n_threads=8)
        assert r8 == pytest.approx(r1)

    def test_ht_sibling_pollutes_history(self):
        phase = make_phase(branch_history_sensitivity=0.9)
        solo = analytic_mispredict_rate(phase, self.params, core_sharers=1)
        pair = analytic_mispredict_rate(phase, self.params, core_sharers=2)
        assert pair > solo

    def test_insensitive_code_barely_polluted(self):
        tough = make_phase(branch_history_sensitivity=0.9)
        easy = make_phase(branch_history_sensitivity=0.05)
        delta_tough = analytic_mispredict_rate(
            tough, self.params, core_sharers=2
        ) - analytic_mispredict_rate(tough, self.params, core_sharers=1)
        delta_easy = analytic_mispredict_rate(
            easy, self.params, core_sharers=2
        ) - analytic_mispredict_rate(easy, self.params, core_sharers=1)
        assert delta_tough > delta_easy

    def test_different_program_sibling_adds_aliasing(self):
        phase = make_phase(branch_sites=2000)
        co = make_phase(branch_sites=2000)
        same = analytic_mispredict_rate(
            phase, self.params, core_sharers=2, same_program=True
        )
        diff = analytic_mispredict_rate(
            phase, self.params, core_sharers=2, same_program=False,
            co_phase=co,
        )
        assert diff > same

    def test_bounded(self):
        phase = make_phase(branch_misp_intrinsic=0.9, inner_trip_count=2.0,
                           branch_sites=100000,
                           branch_history_sensitivity=1.0)
        rate = analytic_mispredict_rate(
            phase, self.params, n_threads=8, core_sharers=2
        )
        assert rate <= 1.0
