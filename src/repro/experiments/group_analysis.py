"""Section-4 group methodology as a first-class artifact.

The paper structures its entire analysis around four comparison groups,
each isolating one factor (adding an HT sibling; HT vs real cores on
one chip; the same at half load across two chips; HT on the fully
loaded machine).  This driver renders the within-group comparisons for
wall-clock speedup and for the counter metrics the paper walks through,
ending with each group's verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.groups import (
    GroupDelta,
    group_deltas,
    ht_benefit_summary,
    report_groups,
)
from repro.analysis.result import ExperimentResult
from repro.core.context import RunContext, as_context
from repro.core.study import Study


@dataclass
class GroupAnalysisResult(ExperimentResult):
    """Per-metric group deltas."""

    by_metric: Dict[str, List[GroupDelta]] = field(default_factory=dict)

    def summary(self, metric: str) -> Dict[str, float]:
        return ht_benefit_summary(self.by_metric[metric])


METRICS = ["speedup", "l2_miss_rate", "stall_fraction",
           "branch_prediction_rate", "cpi"]


def run(
    ctx: Union[RunContext, Study, None] = None,
    metrics: Optional[Sequence[str]] = None,
) -> GroupAnalysisResult:
    study = as_context(ctx).study()
    result = GroupAnalysisResult()
    for metric in metrics or METRICS:
        result.by_metric[metric] = group_deltas(study, metric=metric)
    return result


def report(result: GroupAnalysisResult) -> str:
    parts = []
    for metric, deltas in result.by_metric.items():
        parts.append(report_groups(deltas))
    # The paper's group verdicts, restated from the measured deltas.
    sp = result.summary("speedup")
    verdicts = [
        "group verdicts (average speedup change when the group's factor "
        "is applied):",
        f"  G1 one HT sibling on a serial run:        {sp['group1'] * 100:+.1f}%",
        f"  G2 HT on one chip vs two real cores:      {sp['group2'] * 100:+.1f}%",
        f"  G3 HT on two half-loaded chips:           {sp['group3'] * 100:+.1f}%",
        f"  G4 HT on the fully loaded machine:        {sp['group4'] * 100:+.1f}%",
    ]
    parts.append("\n".join(verdicts))
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
